"""Unit tests for inlet temperature variation and the wax estimator."""

import numpy as np
import pytest

from repro.config import ThermalConfig, WaxConfig
from repro.errors import ThermalModelError
from repro.thermal.inlet import draw_inlet_temperatures
from repro.thermal.pcm import PCMBank
from repro.thermal.wax_estimator import WaxStateEstimator

WAX = WaxConfig()
THERMAL = ThermalConfig()


class TestInletTemperatures:
    def test_zero_stdev_is_exact_and_seed_free(self, rng):
        temps = draw_inlet_temperatures(ThermalConfig(inlet_stdev_c=0.0),
                                        50, rng)
        assert np.all(temps == 20.0)

    def test_nonzero_stdev_spreads_around_mean(self, rng):
        thermal = ThermalConfig(inlet_stdev_c=2.0)
        temps = draw_inlet_temperatures(thermal, 5000, rng)
        assert abs(temps.mean() - 20.0) < 0.2
        assert abs(temps.std() - 2.0) < 0.2

    def test_rejects_empty_cluster(self, rng):
        with pytest.raises(ThermalModelError):
            draw_inlet_temperatures(THERMAL, 0, rng)

    def test_reproducible_given_same_generator_state(self):
        a = draw_inlet_temperatures(ThermalConfig(inlet_stdev_c=1.0), 10,
                                    np.random.default_rng(5))
        b = draw_inlet_temperatures(ThermalConfig(inlet_stdev_c=1.0), 10,
                                    np.random.default_rng(5))
        assert np.array_equal(a, b)


class TestWaxStateEstimator:
    def test_noise_free_estimator_tracks_truth_closely(self):
        truth = PCMBank(WAX, 1, initial_temp_c=35.0)
        estimator = WaxStateEstimator(WAX, THERMAL, 1, sensor_noise_c=0.0,
                                      bin_width_c=0.1)
        for __ in range(240):  # 4 hours of hot air
            truth.step(40.0, THERMAL.ha_w_per_k, 60.0)
            estimator.update(np.array([40.0]), 60.0)
        assert estimator.error_vs(truth.melt_fraction) < 0.06

    def test_noisy_estimator_stays_bounded(self):
        rng = np.random.default_rng(3)
        truth = PCMBank(WAX, 8, initial_temp_c=35.0)
        estimator = WaxStateEstimator(WAX, THERMAL, 8, sensor_noise_c=0.5,
                                      rng=rng)
        for __ in range(240):
            truth.step(40.0, THERMAL.ha_w_per_k, 60.0)
            estimator.update(np.full(8, 40.0), 60.0)
        assert estimator.error_vs(truth.melt_fraction) < 0.15

    def test_estimate_clipped_to_unit_interval(self):
        estimator = WaxStateEstimator(WAX, THERMAL, 2, sensor_noise_c=0.0)
        for __ in range(10_000):
            estimator.update(np.array([60.0, 60.0]), 60.0)
        assert np.all(estimator.estimate <= 1.0)
        for __ in range(10_000):
            estimator.update(np.array([0.0, 0.0]), 60.0)
        assert np.all(estimator.estimate >= 0.0)

    def test_correct_reanchors_masked_servers(self):
        estimator = WaxStateEstimator(WAX, THERMAL, 3, sensor_noise_c=0.0)
        estimator.update(np.full(3, 45.0), 3600.0)
        truth = np.array([0.0, 0.5, 1.0])
        estimator.correct(truth, mask=np.array([True, False, True]))
        assert estimator.estimate[0] == 0.0
        assert estimator.estimate[2] == 1.0
        assert estimator.estimate[1] != 0.5 or True  # untouched server

    def test_reset_zeroes_estimate(self):
        estimator = WaxStateEstimator(WAX, THERMAL, 2, sensor_noise_c=0.0)
        estimator.update(np.array([45.0, 45.0]), 3600.0)
        estimator.reset()
        assert np.all(estimator.estimate == 0.0)

    def test_below_melt_air_never_raises_estimate(self):
        estimator = WaxStateEstimator(WAX, THERMAL, 1, sensor_noise_c=0.0)
        estimator.update(np.array([30.0]), 3600.0)
        assert estimator.estimate[0] == 0.0

    def test_zero_latent_wax_estimates_nothing(self):
        degenerate = WaxConfig(latent_heat_j_per_kg=0.0)
        estimator = WaxStateEstimator(degenerate, THERMAL, 1,
                                      sensor_noise_c=0.0)
        estimator.update(np.array([50.0]), 3600.0)
        assert estimator.estimate[0] == 0.0

    def test_rejects_bad_construction(self):
        with pytest.raises(ThermalModelError):
            WaxStateEstimator(WAX, THERMAL, 0)
        with pytest.raises(ThermalModelError):
            WaxStateEstimator(WAX, THERMAL, 1, bin_width_c=0.0)

    def test_rejects_nonpositive_dt(self):
        estimator = WaxStateEstimator(WAX, THERMAL, 1)
        with pytest.raises(ThermalModelError):
            estimator.update(np.array([40.0]), 0.0)

"""Golden-trace regression tests.

The committed goldens pin every policy's canonical run bit-for-bit.
The re-run tests execute under ``checks="full"`` so a pass certifies
both "nothing drifted" and "every invariant held for the whole trace"
-- they are the slowest tests in the suite (one 100-server two-day run
per policy), matching the integration tests in cost.

The divergence-report tests are synthetic (no simulation): they verify
that a drifted series is localized to the right metric and tick.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.checks.golden import (GOLDEN_CONFIG_KWARGS, GOLDEN_DIR,
                                 GOLDEN_SERIES, check_policy,
                                 first_divergence, golden_config,
                                 load_golden, load_manifest)
from repro.core.policies import SCHEDULER_NAMES
from repro.errors import ConfigurationError


def fake_result(golden):
    """A stand-in result exposing the golden's own series verbatim."""
    return SimpleNamespace(**{name: golden[name].copy()
                              for name in GOLDEN_SERIES})


class TestGoldenArtifacts:
    def test_manifest_covers_every_policy(self):
        manifest = load_manifest()
        assert set(manifest["fingerprints"]) == set(SCHEDULER_NAMES)
        assert manifest["config"] == GOLDEN_CONFIG_KWARGS
        assert manifest["series"] == list(GOLDEN_SERIES)

    @pytest.mark.parametrize("policy", SCHEDULER_NAMES)
    def test_golden_files_complete(self, policy):
        golden = load_golden(policy)
        assert set(GOLDEN_SERIES) <= set(golden)
        lengths = {len(golden[name]) for name in GOLDEN_SERIES}
        assert len(lengths) == 1  # every series covers every tick
        assert (GOLDEN_DIR / f"{policy}.npz").exists()

    def test_golden_config_matches_manifest(self):
        config = golden_config()
        assert config.num_servers == 100
        assert config.scheduler.grouping_value == 22.0
        assert config.seed == 7

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            load_golden("no-such-policy")
        with pytest.raises(ConfigurationError):
            check_policy("no-such-policy")


class TestDivergenceReports:
    def test_identical_series_have_no_divergence(self):
        golden = load_golden("round-robin")
        assert first_divergence("round-robin", fake_result(golden),
                                golden) is None

    def test_earliest_tick_wins(self):
        golden = load_golden("round-robin")
        result = fake_result(golden)
        result.cooling_load_w[100] += 1.0
        result.jobs[50] += 1
        div = first_divergence("round-robin", result, golden)
        assert div is not None
        assert div.metric == "jobs"
        assert div.tick == 50
        assert div.got == div.expected + 1

    def test_report_is_readable(self):
        golden = load_golden("vmt-wa")
        result = fake_result(golden)
        result.mean_melt_fraction[7] = 0.5
        div = first_divergence("vmt-wa", result, golden)
        report = div.report()
        assert "mean_melt_fraction" in report
        assert "tick 7" in report
        assert "expected" in report and "got" in report

    def test_truncated_series_diverges_at_cut(self):
        golden = load_golden("round-robin")
        result = fake_result(golden)
        result.cooling_load_w = result.cooling_load_w[:-10]
        div = first_divergence("round-robin", result, golden)
        assert div is not None
        assert div.metric == "cooling_load_w"
        assert div.tick == len(golden["cooling_load_w"]) - 10

    def test_nan_equals_nan(self):
        """Group means are NaN for partition-less policies; not drift."""
        golden = load_golden("round-robin")
        assert np.isnan(golden["hot_group_mean_temp_c"]).all()
        assert first_divergence("round-robin", fake_result(golden),
                                golden) is None


class TestGoldenReruns:
    @pytest.mark.parametrize("policy", SCHEDULER_NAMES)
    def test_policy_reproduces_golden_under_full_checks(self, policy):
        comparison = check_policy(policy, checks="full")
        assert comparison.matches, comparison.report()
        assert "OK" in comparison.report()

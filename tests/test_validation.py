"""Tests for the calibration validator and its CLI surface."""

import dataclasses

import pytest

from repro.analysis.validation import (Check, validate_calibration,
                                       validate_with_simulation)
from repro.cli import main
from repro.config import ThermalConfig, WaxConfig, paper_cluster_config


class TestValidateCalibration:
    def test_default_configuration_passes_everything(self):
        checks = validate_calibration()
        assert len(checks) == 6
        failed = [c.name for c in checks if not c.passed]
        assert not failed

    def test_detects_round_robin_melting(self):
        """Raise the air resistance: round robin would cross the melt
        point and the first invariant must fail."""
        config = paper_cluster_config()
        config = config.replace(thermal=dataclasses.replace(
            config.thermal, r_air_c_per_w=0.085))
        checks = {c.name: c for c in validate_calibration(config)}
        assert not checks[
            "round-robin peak sits just below the melt point"].passed

    def test_detects_unmeltable_wax(self):
        """A 50 C wax grade cannot melt in this datacenter: the
        hot-group invariant must fail."""
        config = paper_cluster_config()
        config = config.replace(wax=config.wax.with_melt_temp(50.0))
        checks = {c.name: c for c in validate_calibration(config)}
        assert not checks["hot group clears the melt point at peak"].passed

    def test_detects_capacity_mismatch(self):
        """Triple the heat of fusion: capacity no longer matches the
        peak window."""
        config = paper_cluster_config()
        config = config.replace(wax=config.wax.scaled_latent(3.0))
        checks = {c.name: c for c in validate_calibration(config)}
        assert not checks[
            "latent capacity matches the peak window"].passed

    def test_detects_undersized_cold_group(self):
        """A large GV leaves the cold group too small for the peak."""
        config = paper_cluster_config(grouping_value=26.0)
        checks = {c.name: c for c in validate_calibration(config)}
        assert not checks["cold group holds the peak cold demand"].passed

    def test_check_is_immutable_record(self):
        check = Check(name="x", passed=True, detail="y")
        with pytest.raises(AttributeError):
            check.passed = False


class TestValidateWithSimulation:
    def test_small_cluster_passes(self):
        checks = validate_with_simulation(num_servers=40)
        assert len(checks) == 4
        assert all(c.passed for c in checks)


class TestValidateCLI:
    def test_exit_zero_on_pass(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "6/6 checks passed" in out

    def test_reports_failures_with_nonzero_exit(self, capsys,
                                                monkeypatch):
        from repro.analysis import validation

        def broken(config=None):
            return [Check(name="synthetic", passed=False, detail="boom")]

        monkeypatch.setattr(validation, "validate_calibration", broken)
        monkeypatch.setattr("repro.analysis.validation.validate_calibration",
                            broken)
        assert main(["validate"]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out

"""Unit tests for the workload registry, classification, jobs, and mixes."""

import numpy as np
import pytest

from repro.config import ServerConfig, SimulationConfig, ThermalConfig, WaxConfig
from repro.errors import ConfigurationError, TraceError
from repro.workloads.classification import (classify_suite,
                                            classify_workload,
                                            isolated_server_power_w,
                                            isolated_steady_temp_c)
from repro.workloads.jobs import DemandVector, Job
from repro.workloads.mix import FIGURE1_PAIRS, WorkloadMix, paper_mix
from repro.workloads.workload import (COLD_INDICES, HOT_INDICES,
                                      ThermalClass, WORKLOADS,
                                      WORKLOAD_LIST, get_workload)

CONFIG = SimulationConfig()


class TestWorkloadRegistry:
    def test_table1_powers(self):
        expected = {"WebSearch": 37.2, "DataCaching": 13.5,
                    "VideoEncoding": 60.9, "VirusScan": 3.4,
                    "Clustering": 59.5}
        for name, power in expected.items():
            assert WORKLOADS[name].per_cpu_power_w == pytest.approx(power)

    def test_table1_classes(self):
        hot = {"WebSearch", "VideoEncoding", "Clustering"}
        for name, workload in WORKLOADS.items():
            assert workload.is_hot == (name in hot)

    def test_hot_and_cold_indices_partition_the_suite(self):
        assert sorted(HOT_INDICES + COLD_INDICES) == list(range(5))

    def test_per_core_power(self):
        assert WORKLOADS["WebSearch"].per_core_power_w(8) == pytest.approx(
            4.65)

    def test_get_workload_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_workload("Bitcoin")

    def test_rejects_negative_power(self):
        from repro.workloads.workload import QoSClass, Workload
        with pytest.raises(ConfigurationError):
            Workload(name="x", per_cpu_power_w=-1.0,
                     thermal_class=ThermalClass.HOT,
                     qos_class=QoSClass.LATENCY_CRITICAL)


class TestClassification:
    def test_derived_classes_match_table1(self):
        """The thermal model reproduces Table I's labels from physics."""
        derived = classify_suite(WORKLOAD_LIST, CONFIG.server,
                                 CONFIG.thermal, CONFIG.wax)
        for workload in WORKLOAD_LIST:
            assert derived[workload.name] == workload.thermal_class

    def test_isolated_power_capped_at_peak(self):
        hot_server = ServerConfig(peak_power_w=200.0)
        power = isolated_server_power_w(WORKLOADS["VideoEncoding"],
                                        hot_server)
        assert power == pytest.approx(200.0)

    def test_cooler_wax_flips_classification(self):
        """With a 30 C melt point even DataCaching would classify hot."""
        cool_wax = WaxConfig(melt_temp_c=29.0)
        cls = classify_workload(WORKLOADS["DataCaching"], CONFIG.server,
                                CONFIG.thermal, cool_wax)
        assert cls is ThermalClass.HOT

    def test_isolated_steady_temp_ordering(self):
        temps = {w.name: isolated_steady_temp_c(w, CONFIG.server,
                                                CONFIG.thermal)
                 for w in WORKLOAD_LIST}
        assert temps["VideoEncoding"] > temps["WebSearch"] > \
            temps["DataCaching"] > temps["VirusScan"]


class TestDemandVector:
    def test_counts_by_class(self):
        demand = DemandVector({WORKLOADS["WebSearch"]: 10,
                               WORKLOADS["VirusScan"]: 4})
        assert demand.total_jobs == 14
        assert demand.hot_jobs == 10
        assert demand.cold_jobs == 4

    def test_as_array_in_column_order(self):
        demand = DemandVector({WORKLOADS["DataCaching"]: 3})
        arr = demand.as_array
        assert arr[WORKLOAD_LIST.index(WORKLOADS["DataCaching"])] == 3
        assert arr.sum() == 3

    def test_from_array_round_trip(self):
        arr = np.array([1, 2, 3, 4, 5])
        demand = DemandVector.from_array(arr)
        assert np.array_equal(demand.as_array, arr)

    def test_from_array_rejects_bad_shapes(self):
        with pytest.raises(TraceError):
            DemandVector.from_array(np.array([1, 2]))
        with pytest.raises(TraceError):
            DemandVector.from_array(np.array([1, -2, 3, 4, 5]))

    def test_rejects_negative_counts(self):
        with pytest.raises(ConfigurationError):
            DemandVector({WORKLOADS["WebSearch"]: -1})

    def test_jobs_materialization(self):
        demand = DemandVector({WORKLOADS["Clustering"]: 2,
                               WORKLOADS["VirusScan"]: 1})
        jobs = list(demand.jobs())
        assert len(jobs) == 3
        assert sum(j.is_hot for j in jobs) == 2
        assert len({j.job_id for j in jobs}) == 3

    def test_equality(self):
        a = DemandVector({WORKLOADS["WebSearch"]: 1})
        b = DemandVector({WORKLOADS["WebSearch"]: 1})
        assert a == b


class TestWorkloadMix:
    def test_normalization(self):
        mix = WorkloadMix.of({WORKLOADS["WebSearch"]: 2.0,
                              WORKLOADS["VirusScan"]: 2.0})
        assert mix.share_of(WORKLOADS["WebSearch"]) == pytest.approx(0.5)

    def test_pair_endpoints_collapse(self):
        mix = WorkloadMix.pair(WORKLOADS["WebSearch"],
                               WORKLOADS["VirusScan"], 1.0)
        assert mix.workloads == [WORKLOADS["WebSearch"]]

    def test_pair_rejects_out_of_range_ratio(self):
        with pytest.raises(ConfigurationError):
            WorkloadMix.pair(WORKLOADS["WebSearch"],
                             WORKLOADS["VirusScan"], 1.5)

    def test_hot_share_of_paper_mix_is_60_percent(self):
        assert paper_mix().hot_share == pytest.approx(0.60)

    def test_mean_per_core_power(self):
        mix = WorkloadMix.pair(WORKLOADS["WebSearch"],
                               WORKLOADS["DataCaching"], 0.5)
        expected = (4.65 + 13.5 / 8) / 2
        assert mix.mean_per_core_power_w() == pytest.approx(expected)

    def test_hot_mean_per_core_power_ignores_cold(self):
        mix = paper_mix()
        hot_only = mix.hot_mean_per_core_power_w()
        assert hot_only > mix.mean_per_core_power_w()

    def test_hot_mean_of_cold_mix_is_zero(self):
        mix = WorkloadMix.pair(WORKLOADS["DataCaching"],
                               WORKLOADS["VirusScan"], 0.5)
        assert mix.hot_mean_per_core_power_w() == 0.0

    def test_share_vector_order(self):
        mix = paper_mix()
        vector = mix.as_share_vector()
        assert vector.sum() == pytest.approx(1.0)
        assert vector[WORKLOAD_LIST.index(WORKLOADS["WebSearch"])] == \
            pytest.approx(0.30)

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ConfigurationError):
            WorkloadMix.of({})
        with pytest.raises(ConfigurationError):
            WorkloadMix.of({WORKLOADS["WebSearch"]: -1.0})

    def test_figure1_pairs_cover_six_panels(self):
        assert len(FIGURE1_PAIRS) == 6
        for a, b in FIGURE1_PAIRS:
            assert a in WORKLOADS and b in WORKLOADS

"""Unit tests for the server air-path thermal model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ThermalConfig
from repro.errors import ThermalModelError
from repro.thermal.server_thermal import ServerAirModel

THERMAL = ThermalConfig()


def test_steady_state_is_inlet_plus_resistance_times_power():
    model = ServerAirModel(THERMAL, 1)
    expected = THERMAL.inlet_temp_c + THERMAL.r_air_c_per_w * 200.0
    assert model.steady_state(200.0)[0] == pytest.approx(expected)


def test_converges_to_steady_state():
    model = ServerAirModel(THERMAL, 1)
    for __ in range(100):
        model.step(300.0, 60.0)
    assert model.temperature_c[0] == pytest.approx(
        model.steady_state(300.0)[0], abs=0.01)


def test_first_order_lag_is_exponential():
    model = ServerAirModel(THERMAL, 1)
    model.reset(0.0)
    start = model.temperature_c[0]
    target = model.steady_state(300.0)[0]
    model.step(300.0, THERMAL.tau_air_s)  # exactly one time constant
    progress = (model.temperature_c[0] - start) / (target - start)
    assert progress == pytest.approx(1.0 - np.exp(-1.0), abs=1e-9)


def test_unconditionally_stable_for_huge_timestep():
    model = ServerAirModel(THERMAL, 1)
    model.step(300.0, 1e9)
    assert model.temperature_c[0] == pytest.approx(
        model.steady_state(300.0)[0])


def test_per_server_inlet_offsets_carry_through():
    inlets = np.array([18.0, 20.0, 22.0])
    model = ServerAirModel(THERMAL, 3, inlet_temp_c=inlets)
    steady = model.steady_state(100.0)
    assert np.allclose(np.diff(steady), 2.0)


def test_reset_to_power_level():
    model = ServerAirModel(THERMAL, 2)
    model.reset(250.0)
    assert np.allclose(model.temperature_c, model.steady_state(250.0))


def test_rejects_zero_servers():
    with pytest.raises(ThermalModelError):
        ServerAirModel(THERMAL, 0)


def test_rejects_nonpositive_dt():
    model = ServerAirModel(THERMAL, 1)
    with pytest.raises(ThermalModelError):
        model.step(100.0, 0.0)


@given(st.floats(min_value=0.0, max_value=500.0),
       st.floats(min_value=1.0, max_value=3600.0))
@settings(max_examples=50, deadline=None)
def test_property_temperature_bounded_by_inlet_and_steady(power, dt):
    model = ServerAirModel(THERMAL, 1)
    model.reset(0.0)
    steady = model.steady_state(power)[0]
    model.step(power, dt)
    temp = model.temperature_c[0]
    assert THERMAL.inlet_temp_c - 1e-9 <= temp <= steady + 1e-9


def test_calibration_round_robin_peak_sits_below_melt_point():
    """DESIGN.md section 4: ~227 W/server must stay just under 35.7 C."""
    model = ServerAirModel(THERMAL, 1)
    peak_mixed_power = 227.0
    steady = model.steady_state(peak_mixed_power)[0]
    assert 34.5 < steady < 35.7


def test_calibration_hot_group_peak_exceeds_melt_point():
    """A GV=22 hot-group server (~294 W) must exceed 35.7 C."""
    model = ServerAirModel(THERMAL, 1)
    steady = model.steady_state(294.0)[0]
    assert steady > 35.7

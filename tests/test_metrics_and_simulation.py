"""Unit tests for metrics collection and the simulation wiring."""

import numpy as np
import pytest

from repro.cluster.metrics import MetricsCollector, SimulationResult
from repro.cluster.simulation import ClusterSimulation, run_simulation
from repro.config import SimulationConfig, TraceConfig
from repro.core import RoundRobinScheduler, VMTThermalAwareScheduler
from repro.errors import SimulationError
from repro.workloads.trace import TwoDayTrace


def record_fake(collector, time_s, n=4, temp=30.0, melt=0.0, power=200.0,
                absorb=10.0, hot=None):
    collector.record(
        time_s,
        air_temp_c=np.full(n, temp),
        melt_fraction=np.full(n, melt),
        power_w=np.full(n, power),
        wax_absorption_w=np.full(n, absorb),
        jobs=n * 8,
        hot_mask=hot,
    )


class TestMetricsCollector:
    def test_records_cooling_load(self):
        collector = MetricsCollector()
        record_fake(collector, 0.0, power=200.0, absorb=10.0)
        result = collector.finish(SimulationConfig(num_servers=4), "rr")
        assert result.cooling_load_w[0] == pytest.approx(4 * 190.0)

    def test_hot_group_means(self):
        collector = MetricsCollector()
        hot = np.array([True, True, False, False])
        collector.record(0.0,
                         air_temp_c=np.array([40.0, 42.0, 25.0, 27.0]),
                         melt_fraction=np.zeros(4),
                         power_w=np.full(4, 100.0),
                         wax_absorption_w=np.zeros(4), jobs=0,
                         hot_mask=hot)
        result = collector.finish(SimulationConfig(num_servers=4), "ta")
        assert result.hot_group_mean_temp_c[0] == pytest.approx(41.0)
        assert result.cold_group_mean_temp_c[0] == pytest.approx(26.0)
        assert result.hot_group_size[0] == 2

    def test_no_hot_mask_yields_nan(self):
        collector = MetricsCollector()
        record_fake(collector, 0.0)
        result = collector.finish(SimulationConfig(num_servers=4), "rr")
        assert np.isnan(result.hot_group_mean_temp_c[0])

    def test_heatmaps_optional(self):
        collector = MetricsCollector(record_heatmaps=False)
        record_fake(collector, 0.0)
        result = collector.finish(SimulationConfig(num_servers=4), "rr")
        assert result.temp_heatmap is None

    def test_heatmap_shape(self):
        collector = MetricsCollector(record_heatmaps=True)
        for t in range(3):
            record_fake(collector, float(t))
        result = collector.finish(SimulationConfig(num_servers=4), "rr")
        assert result.temp_heatmap.shape == (3, 4)
        assert result.melt_heatmap.shape == (3, 4)

    def test_empty_collector_raises(self):
        with pytest.raises(SimulationError):
            MetricsCollector().finish(SimulationConfig(num_servers=4), "x")


class TestSimulationResult:
    def _result(self):
        collector = MetricsCollector()
        for t, power in enumerate([100.0, 300.0, 200.0]):
            record_fake(collector, t * 60.0, power=power, absorb=0.0)
        return collector.finish(SimulationConfig(num_servers=4), "rr")

    def test_peak_and_times(self):
        result = self._result()
        assert result.peak_cooling_load_w == pytest.approx(1200.0)
        assert result.times_hours[-1] == pytest.approx(120.0 / 3600.0)

    def test_peak_reduction_vs(self):
        result = self._result()
        assert result.peak_reduction_vs(result) == pytest.approx(0.0)

    def test_summary_keys(self):
        summary = self._result().summary()
        assert summary["scheduler"] == "rr"
        assert summary["peak_cooling_kw"] == pytest.approx(1.2)

    def test_energy_stored_counts_only_absorption(self):
        collector = MetricsCollector()
        record_fake(collector, 0.0, absorb=10.0)
        record_fake(collector, 60.0, absorb=-5.0)
        result = collector.finish(SimulationConfig(num_servers=4), "rr")
        assert result.total_energy_stored_j == pytest.approx(4 * 10 * 60.0)


class TestClusterSimulation:
    def test_short_run_produces_consistent_result(self, small_config):
        result = run_simulation(small_config,
                                RoundRobinScheduler(small_config))
        assert len(result.times_s) == small_config.trace.num_steps
        assert result.scheduler_name == "round-robin"
        assert result.temp_heatmap.shape == (
            small_config.trace.num_steps, small_config.num_servers)

    def test_jobs_recorded_match_trace(self, small_config):
        sim = ClusterSimulation(small_config,
                                RoundRobinScheduler(small_config))
        result = sim.run()
        assert np.array_equal(result.jobs,
                              sim.trace.counts.sum(axis=1))

    def test_mismatched_scheduler_cluster_size_raises(self, small_config):
        other = small_config.replace(num_servers=7)
        with pytest.raises(SimulationError):
            ClusterSimulation(small_config, RoundRobinScheduler(other))

    def test_supplied_trace_is_rescaled_when_needed(self, small_config):
        trace = TwoDayTrace(small_config.trace).generate(40)
        sim = ClusterSimulation(small_config,
                                RoundRobinScheduler(small_config),
                                trace=trace)
        assert sim.trace.total_cores == small_config.total_cores

    def test_deterministic_given_seed(self, small_config):
        a = run_simulation(small_config,
                           RoundRobinScheduler(small_config))
        b = run_simulation(small_config,
                           RoundRobinScheduler(small_config))
        assert np.array_equal(a.cooling_load_w, b.cooling_load_w)

    def test_vmt_records_hot_group_series(self, small_config):
        result = run_simulation(small_config,
                                VMTThermalAwareScheduler(small_config))
        assert not np.isnan(result.hot_group_mean_temp_c).any()
        assert result.hot_group_size[0] > 0

    def test_engine_clock_matches_trace_span(self, small_config):
        sim = ClusterSimulation(small_config,
                                RoundRobinScheduler(small_config))
        sim.run()
        expected = small_config.trace.num_steps * 60.0
        assert sim.engine.now == pytest.approx(expected, abs=1.0)

"""Property-based tests: scheduler invariants under adversarial inputs.

Whatever the demand sequence, sensor state, or estimator garbage, every
policy must (a) place exactly the demanded jobs, (b) respect per-server
core capacity, and (c) never crash.  Hypothesis drives random demand
mixes and corrupted views at the placement layer.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.state import ClusterView
from repro.config import SimulationConfig
from repro.core import make_scheduler
from repro.core.policies import SCHEDULER_NAMES
from repro.core.scheduler import NUM_WORKLOADS

CONFIG = SimulationConfig(num_servers=8)
CAPACITY = CONFIG.total_cores


def make_view(temps, melt):
    return ClusterView(
        time_s=0.0,
        num_servers=CONFIG.num_servers,
        cores_per_server=CONFIG.server.cores,
        air_temp_c=np.asarray(temps, dtype=np.float64),
        wax_melt_estimate=np.asarray(melt, dtype=np.float64),
        melt_temp_c=CONFIG.wax.melt_temp_c,
    )


demand_strategy = st.lists(
    st.integers(min_value=0, max_value=CAPACITY // NUM_WORKLOADS),
    min_size=NUM_WORKLOADS, max_size=NUM_WORKLOADS)

temps_strategy = st.lists(
    st.floats(min_value=-10.0, max_value=90.0, allow_nan=False),
    min_size=CONFIG.num_servers, max_size=CONFIG.num_servers)

melt_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=CONFIG.num_servers, max_size=CONFIG.num_servers)


@pytest.mark.parametrize("policy", SCHEDULER_NAMES)
@given(demand=demand_strategy, temps=temps_strategy, melt=melt_strategy)
@settings(max_examples=25, deadline=None)
def test_property_placement_invariants(policy, demand, temps, melt):
    scheduler = make_scheduler(policy, CONFIG)
    demand = np.asarray(demand, dtype=np.int64)
    placement = scheduler.place(demand, make_view(temps, melt))
    assert np.array_equal(placement.allocation.sum(axis=0), demand)
    assert placement.allocation.min() >= 0
    assert placement.allocation.sum(axis=1).max() <= CONFIG.server.cores


@pytest.mark.parametrize("policy", SCHEDULER_NAMES)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_property_stateful_sequences(policy, seed):
    """Multi-tick sequences with swinging demand keep all invariants.

    Stateful policies (persistent baselines, VMT-WA's group size,
    VMT-Preserve's hysteresis) must stay consistent while demand ramps,
    spikes to full capacity, and collapses to zero.
    """
    rng = np.random.default_rng(seed)
    scheduler = make_scheduler(policy, CONFIG)
    levels = [0.1, 0.6, 1.0, 0.95, 0.3, 0.0, 0.8]
    melt = np.zeros(CONFIG.num_servers)
    for level in levels:
        total = int(level * CAPACITY)
        split = rng.multinomial(total, np.full(NUM_WORKLOADS,
                                               1.0 / NUM_WORKLOADS))
        temps = rng.uniform(20.0, 45.0, CONFIG.num_servers)
        melt = np.clip(melt + rng.uniform(-0.2, 0.3,
                                          CONFIG.num_servers), 0, 1)
        placement = scheduler.place(split.astype(np.int64),
                                    make_view(temps, melt))
        assert np.array_equal(placement.allocation.sum(axis=0), split)
        assert placement.allocation.sum(axis=1).max() <= \
            CONFIG.server.cores


@pytest.mark.parametrize("policy", ("vmt-ta", "vmt-wa", "vmt-preserve"))
def test_garbage_estimator_never_breaks_placement(policy):
    """Failure injection: an estimator stuck at all-melted or flapping
    between extremes must never cause a placement failure."""
    scheduler = make_scheduler(policy, CONFIG)
    demand = np.array([40, 40, 40, 40, 40], dtype=np.int64)
    for melt in (np.ones(8), np.zeros(8),
                 np.tile([0.0, 1.0], 4), np.full(8, 0.98)):
        placement = scheduler.place(
            demand, make_view(np.full(8, 36.0), melt))
        assert placement.jobs_placed == int(demand.sum())


@pytest.mark.parametrize("policy", SCHEDULER_NAMES)
def test_full_capacity_demand_is_always_placeable(policy):
    scheduler = make_scheduler(policy, CONFIG)
    demand = np.zeros(NUM_WORKLOADS, dtype=np.int64)
    demand[0] = CAPACITY
    placement = scheduler.place(demand,
                                make_view(np.full(8, 30.0), np.zeros(8)))
    assert placement.jobs_placed == CAPACITY
    assert np.all(placement.allocation.sum(axis=1)
                  == CONFIG.server.cores)

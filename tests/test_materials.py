"""Unit tests for the PCM materials database."""

import pytest

from repro.errors import ConfigurationError
from repro.thermal.materials import (N_PARAFFIN, PARAFFIN_COMMERCIAL_GRADES,
                                     WATER, cheapest_material_for,
                                     commercial_grade_for,
                                     material_cost_usd)


def test_commercial_band_starts_at_paper_minimum():
    melts = [g.melt_temp_c for g in PARAFFIN_COMMERCIAL_GRADES]
    assert min(melts) == pytest.approx(35.7)
    assert max(melts) == pytest.approx(60.0)


def test_commercial_grades_are_cheap():
    assert all(g.cost_usd_per_ton == pytest.approx(1000.0)
               for g in PARAFFIN_COMMERCIAL_GRADES)


def test_n_paraffin_is_cost_prohibitive():
    assert N_PARAFFIN.cost_usd_per_ton == pytest.approx(75_000.0)
    assert not N_PARAFFIN.commercially_available


def test_commercial_grade_for_exact_match():
    grade = commercial_grade_for(40.0)
    assert grade is not None
    assert grade.melt_temp_c == pytest.approx(40.0)


def test_commercial_grade_for_below_band_returns_none():
    assert commercial_grade_for(30.0) is None


def test_cheapest_material_falls_back_to_n_paraffin():
    assert cheapest_material_for(30.0) is N_PARAFFIN
    assert cheapest_material_for(45.0).commercially_available


def test_material_cost_scales_with_mass():
    grade = PARAFFIN_COMMERCIAL_GRADES[0]
    one_ton = material_cost_usd(grade, 907.185)
    assert one_ton == pytest.approx(1000.0)
    assert material_cost_usd(grade, 2 * 907.185) == pytest.approx(2000.0)


def test_material_cost_rejects_negative_mass():
    with pytest.raises(ConfigurationError):
        material_cost_usd(WATER, -1.0)


def test_volumetric_latent():
    grade = PARAFFIN_COMMERCIAL_GRADES[0]
    expected = grade.latent_heat_j_per_kg * grade.density_kg_per_m3 / 1000
    assert grade.volumetric_latent_j_per_l == pytest.approx(expected)


def test_energy_for_mass():
    assert WATER.energy_for_mass(2.0) == pytest.approx(2 * 334e3)
    with pytest.raises(ConfigurationError):
        WATER.energy_for_mass(-2.0)


def test_water_melt_point_is_useless_for_datacenters():
    # The comparison the paper draws: water's latent heat sits at 0 C,
    # far below any datacenter operating band.
    assert WATER.melt_temp_c < 20.0

"""Unit tests for datacenter scale-out and the TCO model (Section V-E).

These pin the paper's exact arithmetic: $84k per MW-year of cooling,
$21M lifetime cost at 25 MW, $2.69M savings at 12.8%, $1.26M at 6%,
+7,339 servers (or +3,191 conservatively), and wax under 0.5% of server
cost.
"""

import pytest

from repro.cluster.datacenter import Datacenter, DatacenterImpact
from repro.config import ServerConfig, WaxConfig
from repro.errors import ConfigurationError
from repro.tco.model import TCOModel
from repro.tco.wax_cost import (n_paraffin_alternative_cost_usd,
                                wax_cost_fraction_of_server,
                                wax_deployment_cost_usd)
from repro.units import MW

DC = Datacenter()
TCO = TCOModel()
WAX = WaxConfig()


class TestDatacenter:
    def test_paper_dimensions(self):
        assert DC.critical_power_w == pytest.approx(25 * MW)
        assert DC.num_servers == 50_000
        assert DC.num_clusters == 50

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            Datacenter(critical_power_w=0)
        with pytest.raises(ConfigurationError):
            Datacenter(servers_per_cluster=0)

    def test_impact_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            DC.impact_of(1.0)


class TestDatacenterImpact:
    def test_headline_reduction_numbers(self):
        impact = DC.impact_of(0.128)
        assert impact.reduced_peak_cooling_w == pytest.approx(21.8 * MW)
        assert impact.cooling_reduction_w == pytest.approx(3.2 * MW)
        assert impact.additional_servers == 7_339
        assert impact.additional_servers_per_cluster == 146
        assert impact.additional_server_fraction == pytest.approx(
            0.1468, abs=1e-4)

    def test_conservative_numbers(self):
        impact = DC.impact_of(0.06)
        assert impact.additional_servers == 3_191
        assert impact.additional_server_fraction == pytest.approx(
            0.0638, abs=1e-3)

    def test_zero_reduction_changes_nothing(self):
        impact = DC.impact_of(0.0)
        assert impact.additional_servers == 0
        assert impact.reduced_peak_cooling_w == pytest.approx(25 * MW)


class TestTCOModel:
    def test_cooling_cost_per_mw_year(self):
        assert TCO.cooling_cost_usd_per_mw_year() == pytest.approx(84_000.0)

    def test_lifetime_cost_at_25mw_is_21m(self):
        assert TCO.lifetime_cooling_cost_usd(25 * MW) == pytest.approx(
            21_000_000.0)

    def test_headline_savings(self):
        """12.8% of $21M = $2.688M, the paper's '$2,690,000'."""
        savings = TCO.cooling_savings_usd(25 * MW, 0.128)
        assert savings == pytest.approx(2_688_000.0)

    def test_conservative_savings(self):
        """6% of $21M = $1.26M, the paper's '$1,260,000'."""
        assert TCO.cooling_savings_usd(25 * MW, 0.06) == pytest.approx(
            1_260_000.0)

    def test_vmt_savings_nets_out_wax(self):
        savings = TCO.vmt_savings(25 * MW, 0.128, WAX, 50_000)
        assert savings.net_savings_usd == pytest.approx(
            savings.gross_cooling_savings_usd
            - savings.wax_deployment_cost_usd)
        assert savings.wax_deployment_cost_usd > 0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            TCO.lifetime_cooling_cost_usd(0)
        with pytest.raises(ConfigurationError):
            TCO.cooling_savings_usd(25 * MW, 1.0)
        with pytest.raises(ConfigurationError):
            TCOModel(cooling_usd_per_kw_month=0)


class TestWaxCosts:
    def test_commercial_wax_cost_is_small(self):
        cost = wax_deployment_cost_usd(WAX, 50_000)
        # ~3.5 kg/server at $1,000/ton: a few dollars per server.
        assert cost / 50_000 < 10.0

    def test_wax_under_half_percent_of_server_cost(self):
        """Section IV-F: 'less than 0.5% of the purchase cost per server'."""
        assert wax_cost_fraction_of_server(WAX) < 0.005

    def test_n_paraffin_is_order_10m(self):
        """Section V-E: the TTS-only alternative costs ~$10M."""
        cost = n_paraffin_alternative_cost_usd(WAX, 50_000)
        assert 5e6 < cost < 2e7

    def test_n_paraffin_vs_commercial_ratio(self):
        commercial = wax_deployment_cost_usd(WAX, 50_000)
        n_paraffin = n_paraffin_alternative_cost_usd(WAX, 50_000)
        assert n_paraffin / commercial == pytest.approx(75.0)

    def test_rejects_negative_fleet(self):
        with pytest.raises(ConfigurationError):
            wax_deployment_cost_usd(WAX, -1)
        with pytest.raises(ConfigurationError):
            n_paraffin_alternative_cost_usd(WAX, -1)
        with pytest.raises(ConfigurationError):
            wax_cost_fraction_of_server(WAX, server_cost_usd=0)

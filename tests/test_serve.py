"""Tests for the simulation-as-a-service layer (``repro.serve``).

Coverage, per the v1 contract:

* schema-valid JSON out of every endpoint;
* the SSE stream: status frame, span frames, terminal done frame;
* registry semantics: a repeated submission is a *hit* -- ``cached:
  true``, zero simulation ticks, originating manifest path, and a
  fingerprint bit-identical to a direct ``api.run`` of the same config;
* concurrent submissions settle independently (no interleaved state);
* malformed requests come back as structured 4xx JSON, never a
  traceback;
* crash recovery: a manager restarted over the same data directory
  re-enqueues in-flight jobs and completes them.

Everything runs against a real server on an ephemeral port -- requests
go over actual sockets, not handler calls.
"""

import json
import socket
import time
import urllib.error
import urllib.request

import pytest

from repro import api
from repro.config import TraceConfig, paper_cluster_config
from repro.perf import clear_shared_cache
from repro.serve import Server
from repro.serve.jobs import JobManager
from repro.serve.registry import RunRegistry, registry_key

pytestmark = pytest.mark.serve

TINY = {"policy": "vmt-ta", "num_servers": 6, "duration_hours": 2.0,
        "seed": 11}


def tiny_config():
    config = paper_cluster_config(num_servers=6, grouping_value=22.0,
                                  seed=11)
    return config.replace(trace=TraceConfig(duration_hours=2.0))


@pytest.fixture()
def server(tmp_path):
    instance = Server(tmp_path / "state", port=0, max_workers=2).start()
    yield instance
    instance.stop()


def _get(server, path):
    with urllib.request.urlopen(server.base_url + path, timeout=30) as r:
        return r.status, json.loads(r.read())


def _post(server, path, payload):
    request = urllib.request.Request(
        server.base_url + path, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=30) as r:
        return r.status, json.loads(r.read())


def _await_job(server, job_id, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        _, job = _get(server, f"/v1/runs/{job_id}")
        if job["status"] in ("done", "failed"):
            return job
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not settle in {timeout_s}s")


def _submit_and_await(server, path, payload):
    status, body = _post(server, path, payload)
    assert status == 202
    job = _await_job(server, body["job"]["id"])
    assert job["status"] == "done", job["error"]
    return job


class TestEndpointSchemas:
    def test_index_and_healthz_and_meta(self, server):
        status, index = _get(server, "/")
        assert status == 200
        assert index["api_version"] == api.API_VERSION
        assert "POST /v1/runs" in index["endpoints"]

        _, health = _get(server, "/v1/healthz")
        assert health == {"status": "ok",
                          "api_version": api.API_VERSION}

        _, meta = _get(server, "/v1/meta")
        assert set(meta["policies"]) >= {"round-robin", "vmt-ta"}
        assert len(meta["scenarios"]) == 9
        assert meta["backends"] == ["reference", "fast"]

    def test_run_job_lifecycle_and_result_schema(self, server):
        status, body = _post(server, "/v1/runs", TINY)
        assert status == 202
        job = body["job"]
        assert job["schema"] == "repro.job/1"
        assert job["kind"] == "run"
        assert job["status"] in ("queued", "running")
        assert job["request"]["policy"] == "vmt-ta"

        done = _await_job(server, job["id"])
        assert done["cached"] is False
        assert done["sim_ticks_executed"] == 120  # 2 h of minute ticks
        assert done["fingerprint"]
        assert done["has_result"] is True

        _, result = _get(server, f"/v1/runs/{job['id']}/result")
        assert result["cached"] is False
        assert result["result"]["schema"] == "repro.result/1"
        assert result["result"]["fingerprint"] == done["fingerprint"]

        _, jobs = _get(server, "/v1/jobs")
        assert [j["id"] for j in jobs["jobs"]] == [job["id"]]

    def test_sweep_job_returns_sweep_schema(self, server):
        job = _submit_and_await(server, "/v1/sweeps", {
            "grouping_values": [20.0, 24.0], "policies": ["vmt-ta"],
            "num_servers": 6, "seed": 11})
        _, result = _get(server, f"/v1/runs/{job['id']}/result")
        payload = result["result"]
        assert payload["schema"] == "repro.sweep/1"
        assert payload["values"] == [20.0, 24.0]
        assert len(payload["reductions"]["vmt-ta"]) == 2

    def test_suite_job_returns_suite_schema(self, server):
        job = _submit_and_await(server, "/v1/suites", {
            "scenarios": ["heat-wave"],
            "policies": ["vmt-ta", "round-robin"], "num_servers": 8,
            "duration_hours": 6.0, "seed": 11})
        _, result = _get(server, f"/v1/runs/{job['id']}/result")
        payload = result["result"]
        assert payload["schema"] == "repro.suite/1"
        assert {row["policy"] for row in payload["leaderboard"]} == \
            {"vmt-ta", "round-robin"}

    def test_result_conflicts_while_pending(self, server):
        _, body = _post(server, "/v1/runs", TINY)
        job_id = body["job"]["id"]
        try:
            status, _ = _get(server, f"/v1/runs/{job_id}/result")
        except urllib.error.HTTPError as exc:
            assert exc.code == 409
            assert "not ready" in json.loads(exc.read())["error"]
        else:
            # The tiny run may legitimately finish before the poll.
            assert status == 200
        _await_job(server, job_id)


class TestRegistrySemantics:
    def test_second_submission_is_a_labeled_hit(self, server):
        first = _submit_and_await(server, "/v1/runs", TINY)
        assert first["cached"] is False

        second = _submit_and_await(server, "/v1/runs", TINY)
        assert second["cached"] is True
        assert second["sim_ticks_executed"] == 0
        assert second["fingerprint"] == first["fingerprint"]
        assert second["registry_key"] == first["registry_key"]
        # Provenance: the hit names the ledger manifest it came from.
        assert second["manifest"].endswith(".manifest.json")
        with open(second["manifest"]) as handle:
            manifest = json.load(handle)
        assert manifest["result_fingerprint"] == first["fingerprint"]
        assert manifest["registry_key"] == first["registry_key"]

    def test_hit_fingerprint_matches_direct_api_run(self, server):
        job = _submit_and_await(server, "/v1/runs", TINY)
        clear_shared_cache()
        direct = api.run(policy="vmt-ta", config=tiny_config())
        assert job["fingerprint"] == direct.fingerprint()

    def test_different_policy_is_a_different_key(self, server):
        first = _submit_and_await(server, "/v1/runs", TINY)
        other = _submit_and_await(server, "/v1/runs",
                                  dict(TINY, policy="round-robin"))
        assert other["cached"] is False
        assert other["registry_key"] != first["registry_key"]

    def test_registry_endpoint_lists_entries(self, server):
        job = _submit_and_await(server, "/v1/runs", TINY)
        _, listing = _get(server, "/v1/registry")
        assert len(listing["entries"]) == 1
        entry = listing["entries"][0]
        assert entry["schema"] == "repro.registry-entry/1"
        assert entry["fingerprint"] == job["fingerprint"]
        assert entry["policy"] == "vmt-ta"

    def test_registry_standalone_roundtrip(self, tmp_path):
        clear_shared_cache()
        config = tiny_config()
        result = api.run(policy="vmt-ta", config=config)
        registry = RunRegistry(tmp_path / "reg")
        key = registry_key(config, "vmt-ta")
        assert registry.lookup(key) is None
        registry.store(key, result, wall_clock_s=1.0)
        entry = registry.lookup(key)
        assert entry is not None
        loaded = registry.load(entry)
        assert loaded.fingerprint() == result.fingerprint()


class TestConcurrency:
    def test_concurrent_submissions_do_not_interleave(self, server):
        policies = ["vmt-ta", "round-robin", "coolest-first", "vmt-wa"]
        ids = {}
        for policy in policies:
            _, body = _post(server, "/v1/runs", dict(TINY, policy=policy))
            ids[policy] = body["job"]["id"]
        jobs = {policy: _await_job(server, job_id)
                for policy, job_id in ids.items()}

        clear_shared_cache()
        config = tiny_config()
        for policy, job in jobs.items():
            assert job["request"]["policy"] == policy
            direct = api.run(policy=policy, config=config)
            assert job["fingerprint"] == direct.fingerprint(), policy
        # Distinct policies, distinct physics, distinct registry keys.
        assert len({j["fingerprint"] for j in jobs.values()}) == 4
        assert len({j["registry_key"] for j in jobs.values()}) == 4


class TestMalformedRequests:
    @pytest.mark.parametrize("payload,fragment", [
        ({}, "requires a policy"),
        ({"policy": "hottest-first"}, "unknown policy"),
        ({"policy": "vmt-ta", "bogus": 1}, "unknown run request"),
        ({"policy": "vmt-ta", "num_servers": 0}, "num_servers"),
        ({"policy": "vmt-ta", "num_servers": "six"}, "num_servers"),
        ({"policy": "vmt-ta", "backend": "gpu"}, "backend"),
        ({"policy": "vmt-ta", "checks": "paranoid"}, "checks"),
    ])
    def test_bad_run_payloads_are_400(self, server, payload, fragment):
        with pytest.raises(urllib.error.HTTPError) as info:
            _post(server, "/v1/runs", payload)
        assert info.value.code == 400
        body = json.loads(info.value.read())
        assert fragment in body["error"]
        assert "Traceback" not in body["error"]

    def test_bad_json_body_is_400(self, server):
        request = urllib.request.Request(
            server.base_url + "/v1/runs", data=b"{not json")
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=30)
        assert info.value.code == 400

    def test_unknown_path_404_and_wrong_method_405(self, server):
        with pytest.raises(urllib.error.HTTPError) as info:
            _get(server, "/v2/runs")
        assert info.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as info:
            _get(server, "/v1/runs/no-such-job")
        assert info.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as info:
            _post(server, "/v1/healthz", {})
        assert info.value.code == 405

    def test_bad_sweep_and_suite_payloads(self, server):
        with pytest.raises(urllib.error.HTTPError) as info:
            _post(server, "/v1/sweeps", {"grouping_values": []})
        assert info.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as info:
            _post(server, "/v1/suites", {"scenarios": ["volcano"]})
        assert info.value.code == 400


class TestSse:
    def test_stream_yields_status_spans_and_done(self, server):
        _, body = _post(server, "/v1/runs", TINY)
        job_id = body["job"]["id"]
        raw = self._drain_sse(server, f"/v1/runs/{job_id}/events")
        events = _parse_sse(raw)
        assert events[0][0] == "status"
        status_frame = json.loads(events[0][1])
        assert status_frame["id"] == job_id
        spans = [data for name, data in events if name == "span"]
        assert spans, "a fresh run must stream span frames"
        for line in spans[:5]:
            json.loads(line)  # every frame is one JSONL span
        assert events[-1][0] == "done"
        final = json.loads(events[-1][1])
        assert final["status"] == "done"
        assert final["cached"] is False

    def test_cached_job_replays_source_spans(self, server):
        """A registry hit replays the originating run's persisted spans
        behind a typed ``cached-replay`` frame -- never zero history,
        never passed off as fresh execution."""
        first = _submit_and_await(server, "/v1/runs", TINY)
        _, body = _post(server, "/v1/runs", TINY)
        job_id = body["job"]["id"]
        events = _parse_sse(
            self._drain_sse(server, f"/v1/runs/{job_id}/events"))
        names = [name for name, _ in events]
        assert "cached-replay" in names
        marker = json.loads(
            next(data for name, data in events
                 if name == "cached-replay"))
        assert marker["source"] == first["id"]
        spans = [data for name, data in events if name == "span"]
        assert len(spans) == marker["spans"] > 0
        for line in spans[:5]:
            json.loads(line)
        # The replay marker precedes every span: provenance up front.
        assert names.index("cached-replay") < names.index("span")
        assert events[-1][0] == "done"
        assert json.loads(events[-1][1])["cached"] is True

    @staticmethod
    def _drain_sse(server, path, timeout_s=120.0):
        conn = socket.create_connection((server.host, server.port),
                                        timeout=timeout_s)
        try:
            conn.sendall(f"GET {path} HTTP/1.1\r\n"
                         f"Host: {server.host}\r\n\r\n".encode())
            chunks = []
            deadline = time.monotonic() + timeout_s
            while time.monotonic() < deadline:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        finally:
            conn.close()
        raw = b"".join(chunks)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"text/event-stream" in head
        return body.decode("utf-8")


class TestLeaderboard:
    QUERY = ("/v1/leaderboard?scenarios=heat-wave"
             "&policies=vmt-ta,round-robin"
             "&num_servers=8&duration_hours=6&seed=11")

    def test_miss_enqueues_then_hit_serves_cached(self, server):
        status, body = _get(server, self.QUERY)
        assert status == 202
        job = _await_job(server, body["job"]["id"])
        assert job["status"] == "done", job["error"]

        status, board = _get(server, self.QUERY)
        assert status == 200
        assert board["schema"] == "repro.leaderboard/1"
        assert board["cached"] is True
        assert set(board["policies_ranked"]) == \
            {"vmt-ta", "round-robin"}
        ranks = [row["rank"] for row in board["leaderboard"]]
        assert ranks == [1, 2]
        for row in board["leaderboard"]:
            for field in ("policy", "mean_peak_cooling_kw",
                          "mean_qos_ok_fraction", "min_availability",
                          "tco_net_savings_usd"):
                assert field in row

    def test_bad_query_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as info:
            _get(server, "/v1/leaderboard?num_servers=eight")
        assert info.value.code == 400


class TestRecovery:
    def test_restarted_manager_reenqueues_and_completes(self, tmp_path):
        clear_shared_cache()
        data = tmp_path / "state"
        manager = JobManager(data, max_workers=1)
        record = manager.submit("run", dict(TINY))
        # Simulate a hard kill: close() leaves the job either cancelled
        # (still "queued") or settled -- force the persisted state back
        # to in-flight either way.  close() waiting for the worker is
        # load-bearing here: a thread still executing this job would
        # race the revived manager on the same telemetry/registry paths.
        manager.close()
        path = data / "jobs" / f"{record.job_id}.json"
        payload = json.loads(path.read_text())
        payload["status"] = "running"
        path.write_text(json.dumps(payload))

        revived = JobManager(data, max_workers=1)
        try:
            assert revived.recover() == [record.job_id]
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                job = revived.get(record.job_id)
                if job.status in ("done", "failed"):
                    break
                time.sleep(0.05)
            assert job.status == "done", job.error
            clear_shared_cache()
            direct = api.run(policy="vmt-ta", config=tiny_config())
            assert job.fingerprint == direct.fingerprint()
        finally:
            revived.close()


def _parse_sse(text):
    """Parse an SSE body into ordered (event, data) pairs."""
    events = []
    for frame in text.split("\n\n"):
        if not frame.strip():
            continue
        name = None
        data_lines = []
        for line in frame.split("\n"):
            if line.startswith("event: "):
                name = line[len("event: "):]
            elif line.startswith("data: "):
                data_lines.append(line[len("data: "):])
        if name is not None:
            events.append((name, "\n".join(data_lines)))
    return events

"""Unit tests for the reliability model and rotation policy (Fig. 7)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.server.reliability import (ReliabilityModel, RotationPolicy,
                                      cumulative_failure_probability,
                                      failure_curves)

MODEL = ReliabilityModel()


class TestReliabilityModel:
    def test_rate_at_reference_temperature(self):
        assert MODEL.failure_rate_per_hour(30.0) == pytest.approx(
            1.0 / 70_000.0)

    def test_ten_degrees_doubles_rate(self):
        assert MODEL.failure_rate_per_hour(40.0) == pytest.approx(
            2.0 / 70_000.0)
        assert MODEL.failure_rate_per_hour(20.0) == pytest.approx(
            0.5 / 70_000.0)

    def test_three_year_failure_near_paper_value(self):
        """70,000 h MTBF at 30 C -> ~31% cumulative failure at 3 years,
        matching the scale of the paper's Fig. 7 y-axis."""
        prob = cumulative_failure_probability(MODEL, 30.0, 36)
        assert 0.28 < prob < 0.35

    def test_cumulative_failure_multiplies_segments(self):
        segmented = MODEL.cumulative_failure([(30.0, 100.0), (40.0, 50.0)])
        lumped = 1.0 - np.exp(-(100.0 / 70_000.0 + 50.0 * 2 / 70_000.0))
        assert segmented == pytest.approx(lumped)

    def test_rejects_negative_exposure(self):
        with pytest.raises(ConfigurationError):
            MODEL.cumulative_failure([(30.0, -1.0)])

    def test_empty_exposure_history_never_fails(self):
        assert MODEL.cumulative_failure([]) == 0.0

    def test_zero_hours_exposure_never_fails(self):
        assert MODEL.cumulative_failure([(45.0, 0.0)]) == 0.0

    def test_rejects_bad_model_parameters(self):
        with pytest.raises(ConfigurationError):
            ReliabilityModel(mtbf_hours_at_ref=0)
        with pytest.raises(ConfigurationError):
            ReliabilityModel(doubling_delta_c=0)


class TestRotationPolicy:
    def test_paper_policy_rotates_20_percent_per_month(self):
        policy = RotationPolicy(months_hot=3, months_cold=2)
        assert policy.rotation_fraction_per_month == pytest.approx(0.2)
        assert policy.cycle_months == 5

    def test_membership_is_periodic(self):
        policy = RotationPolicy()
        pattern = [policy.in_hot_group(0, m) for m in range(10)]
        assert pattern[:5] == pattern[5:]
        assert sum(pattern[:5]) == 3

    def test_cohorts_are_staggered(self):
        policy = RotationPolicy()
        # In any month, exactly 3/5 of a 5-server cohort is hot.
        for month in range(5):
            hot = sum(policy.in_hot_group(s, month) for s in range(5))
            assert hot == 3

    @pytest.mark.parametrize("fleet", [5, 10, 100, 7, 23, 101])
    def test_cohort_invariant_across_fleet_sizes(self, fleet):
        """In any month roughly months_hot/cycle of the fleet is hot --
        exact for fleets divisible by the cycle, within one cohort's
        rounding otherwise -- and each server is hot exactly months_hot
        months per cycle, so the cycle total is exact for every size."""
        policy = RotationPolicy()
        cycle = policy.cycle_months
        expected = fleet * policy.months_hot / cycle
        total = 0
        for month in range(cycle):
            hot = sum(policy.in_hot_group(s, month)
                      for s in range(fleet))
            total += hot
            if fleet % cycle == 0:
                assert hot == expected
            else:
                assert abs(hot - expected) < 2.0
        assert total == fleet * policy.months_hot

    def test_exposure_months_split(self):
        policy = RotationPolicy()
        hot, cold = policy.exposure_months(36)
        assert hot == pytest.approx(21.6)
        assert cold == pytest.approx(14.4)

    def test_rejects_empty_cycle(self):
        with pytest.raises(ConfigurationError):
            RotationPolicy(months_hot=0, months_cold=0)


class TestFailureCurves:
    def test_paper_gap_band(self):
        """VMT-WA with rotation ends only ~0.4-0.6% above round robin."""
        __, rr, vmt = failure_curves(ReliabilityModel(), RotationPolicy(),
                                     months=36)
        gap = (vmt[-1] - rr[-1]) * 100
        assert 0.3 < gap < 0.8

    def test_curves_are_monotonic(self):
        axis, rr, vmt = failure_curves(ReliabilityModel(),
                                       RotationPolicy(), months=36)
        assert np.all(np.diff(rr) > 0)
        assert np.all(np.diff(vmt) > 0)
        assert len(axis) == 37

    def test_vmt_always_at_or_above_rr(self):
        __, rr, vmt = failure_curves(ReliabilityModel(), RotationPolicy(),
                                     months=36)
        assert np.all(vmt >= rr - 1e-12)

    def test_no_rotation_is_worse_than_rotation(self):
        model = ReliabilityModel()
        __, rr, rotated = failure_curves(model, RotationPolicy(3, 2),
                                         months=36)
        __, __, pinned = failure_curves(model, RotationPolicy(1, 0),
                                        months=36)
        assert pinned[-1] > rotated[-1]

    def test_rejects_nonpositive_horizon(self):
        with pytest.raises(ConfigurationError):
            failure_curves(ReliabilityModel(), RotationPolicy(), months=0)

"""Unit and property tests for the two-day trace generator (Fig. 8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TraceConfig
from repro.errors import TraceError
from repro.workloads.trace import (TraceMatrix, TwoDayTrace,
                                   _largest_remainder_round)
from repro.workloads.workload import WORKLOADS, WORKLOAD_LIST


class TestLargestRemainderRound:
    def test_preserves_total(self):
        out = _largest_remainder_round(np.array([1.4, 2.3, 3.3]), 7)
        assert out.sum() == 7

    def test_integral_targets_unchanged(self):
        out = _largest_remainder_round(np.array([2.0, 3.0]), 5)
        assert list(out) == [2, 3]

    @given(st.lists(st.floats(min_value=0, max_value=1000), min_size=1,
                    max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_property_total_and_proximity(self, targets):
        targets = np.asarray(targets)
        total = int(round(targets.sum()))
        out = _largest_remainder_round(targets, total)
        assert out.sum() == total
        assert np.all(out >= 0)
        # Each entry within 1 of its target (largest remainder property),
        # except when negatives had to be compensated.
        assert np.all(np.abs(out - targets) <= 1.0 + 1e-9)


class TestTraceMatrix:
    def test_validation_rejects_wrong_width(self):
        with pytest.raises(TraceError):
            TraceMatrix(np.zeros((10, 3)), 60.0, 3200)

    def test_validation_rejects_negative(self):
        counts = np.zeros((5, 5), dtype=int)
        counts[0, 0] = -1
        with pytest.raises(TraceError):
            TraceMatrix(counts, 60.0, 3200)

    def test_validation_rejects_overcapacity(self):
        counts = np.full((2, 5), 1000, dtype=int)
        with pytest.raises(TraceError):
            TraceMatrix(counts, 60.0, 3200)

    def test_validation_rejects_nan_demand(self):
        """NaN compares false everywhere, so without an explicit check
        it would slip past the sign/capacity guards and be cast to a
        garbage integer count."""
        counts = np.zeros((5, 5))
        counts[2, 1] = np.nan
        with pytest.raises(TraceError, match="finite"):
            TraceMatrix(counts, 60.0, 3200)

    def test_validation_rejects_infinite_demand(self):
        counts = np.zeros((5, 5))
        counts[0, 0] = np.inf
        with pytest.raises(TraceError, match="finite"):
            TraceMatrix(counts, 60.0, 3200)
        counts[0, 0] = -np.inf
        with pytest.raises(TraceError):
            TraceMatrix(counts, 60.0, 3200)

    def test_validation_rejects_non_numeric_dtype(self):
        counts = np.full((2, 5), "lots", dtype=object)
        with pytest.raises(TraceError, match="numeric"):
            TraceMatrix(counts, 60.0, 3200)

    def test_utilization_and_hot_fraction(self):
        counts = np.zeros((1, 5), dtype=int)
        counts[0, WORKLOAD_LIST.index(WORKLOADS["WebSearch"])] = 16
        counts[0, WORKLOAD_LIST.index(WORKLOADS["VirusScan"])] = 16
        trace = TraceMatrix(counts, 60.0, 64)
        assert trace.utilization()[0] == pytest.approx(0.5)
        assert trace.hot_fraction()[0] == pytest.approx(0.5)

    def test_hot_fraction_zero_when_idle(self):
        trace = TraceMatrix(np.zeros((3, 5), dtype=int), 60.0, 64)
        assert np.all(trace.hot_fraction() == 0.0)

    def test_demand_at_is_a_read_only_zero_copy_view(self):
        """The hot path calls this every tick: it must return a view
        into the one contiguous demand matrix, never a copy."""
        trace = TwoDayTrace(TraceConfig(duration_hours=6)).generate(10)
        row = trace.demand_at(3)
        assert row.base is trace._counts
        assert np.shares_memory(row, trace._counts)
        assert not row.flags.writeable
        with pytest.raises(ValueError):
            row[0] = 1

    def test_backing_matrix_is_contiguous_and_frozen(self):
        trace = TwoDayTrace(TraceConfig(duration_hours=6)).generate(10)
        assert trace._counts.flags.c_contiguous
        assert not trace._counts.flags.writeable

    def test_scaled_to_preserves_utilization(self):
        generator = TwoDayTrace(TraceConfig(duration_hours=6))
        trace = generator.generate(10)
        scaled = trace.scaled_to(40, 32)
        assert scaled.total_cores == 1280
        assert np.allclose(scaled.utilization(), trace.utilization(),
                           atol=0.02)


class TestTwoDayTrace:
    def test_paper_landmarks(self):
        trace = TwoDayTrace().generate(100)
        util = trace.utilization()
        hours = trace.times_hours
        half = len(hours) // 2
        peak1 = hours[np.argmax(util[:half])]
        peak2 = hours[half + np.argmax(util[half:])]
        trough1 = hours[np.argmin(util[:half])]
        trough2 = hours[half + np.argmin(util[half:])]
        assert abs(peak1 - 20.0) < 1.0
        assert abs(peak2 - 46.0) < 1.0
        assert abs(trough1 - 5.0) < 1.5
        assert abs(trough2 - 29.0) < 1.5

    def test_peak_utilization_near_95_percent(self):
        trace = TwoDayTrace().generate(100)
        assert 0.92 <= trace.utilization().max() <= 1.0

    def test_hot_cold_split_is_roughly_60_40(self):
        trace = TwoDayTrace().generate(100)
        assert abs(trace.hot_fraction().mean() - 0.60) < 0.03

    def test_demand_never_exceeds_capacity(self):
        trace = TwoDayTrace().generate(100)
        assert trace.counts.sum(axis=1).max() <= trace.total_cores

    def test_every_workload_present(self):
        trace = TwoDayTrace().generate(100)
        for workload in WORKLOAD_LIST:
            assert trace.workload_series(workload).sum() > 0

    def test_deterministic_given_rng(self):
        a = TwoDayTrace().generate(50, rng=np.random.default_rng(1))
        b = TwoDayTrace().generate(50, rng=np.random.default_rng(1))
        assert np.array_equal(a.counts, b.counts)

    def test_share_matrix_rows_sum_to_one(self):
        shares = TwoDayTrace().share_matrix()
        assert np.allclose(shares.sum(axis=1), 1.0)
        assert np.all(shares >= 0)

    def test_noise_free_trace_is_smooth(self):
        config = TraceConfig(noise_stdev=0.0)
        util = TwoDayTrace(config).utilization_series()
        # One-minute steps of a piecewise-linear skeleton: tiny increments.
        assert np.abs(np.diff(util)).max() < 0.01

    def test_rejects_bad_shares(self):
        with pytest.raises(TraceError):
            TwoDayTrace(shares=(0.5, 0.5, 0.0, 0.0, 0.1))
        with pytest.raises(TraceError):
            TwoDayTrace(shares=(1.0, 0.0, 0.0))

    def test_rejects_bad_amplitude(self):
        with pytest.raises(TraceError):
            TwoDayTrace(share_amplitude=1.5)

    def test_rejects_bad_cluster_dimensions(self):
        with pytest.raises(TraceError):
            TwoDayTrace().generate(0)

    def test_day_scales_damp_the_chosen_day(self):
        scaled = TwoDayTrace(day_scales=(0.7, 1.0)).utilization_series()
        full = TwoDayTrace().utilization_series()
        half = len(full) // 2
        assert scaled[:half].max() < full[:half].max() - 0.05
        assert scaled[half:].max() == pytest.approx(full[half:].max(),
                                                    abs=0.02)

    def test_day_scales_validation(self):
        with pytest.raises(TraceError):
            TwoDayTrace(day_scales=(1.5, 1.0))
        with pytest.raises(TraceError):
            TwoDayTrace(day_scales=(0.5,))

    def test_custom_shape_points(self):
        flat = ((0.0, 0.5), (48.0, 0.5))
        util = TwoDayTrace(TraceConfig(noise_stdev=0.0),
                           shape_points=flat).utilization_series()
        assert np.allclose(util, 0.35 + 0.6 * 0.5)

    @given(st.integers(min_value=1, max_value=40))
    @settings(max_examples=10, deadline=None)
    def test_property_counts_conserved_per_step(self, num_servers):
        config = TraceConfig(duration_hours=2.0)
        trace = TwoDayTrace(config).generate(num_servers)
        util = trace.utilization()
        assert np.all(util <= 1.0)
        assert np.all(util >= 0.0)

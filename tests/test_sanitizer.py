"""Tests for the simulation invariant sanitizer.

Two angles: clean runs stay clean (and bit-identical at every check
level), and each invariant actually fires when the corresponding state
is corrupted.  Corruption happens either by handing the sanitizer a
doctored placement/view (the pre-step checks) or by patching the
cluster's ground-truth views between the physics step and the audit
(the post-step checks).
"""

import dataclasses

import numpy as np
import pytest

from repro.checks import (CHECK_LEVELS, CHECKS_ENV, CHECKS_POLICY_ENV,
                          SimulationSanitizer, resolve_check_level)
from repro.cluster.cluster import Cluster
from repro.cluster.simulation import ClusterSimulation
from repro.config import TraceConfig, paper_cluster_config
from repro.core.policies import SCHEDULER_NAMES, make_scheduler
from repro.core.scheduler import Placement
from repro.errors import ConfigurationError, InvariantViolation
from repro.obs import MetricRegistry, read_trace


def tiny_config(seed=11, **overrides):
    config = paper_cluster_config(num_servers=8, grouping_value=22.0,
                                  seed=seed, **overrides)
    return config.replace(trace=TraceConfig(duration_hours=2.0))


def build_sim(policy="vmt-wa", checks="full", config=None, **kwargs):
    config = config if config is not None else tiny_config()
    scheduler = make_scheduler(policy, config)
    return ClusterSimulation(config, scheduler, record_heatmaps=False,
                             checks=checks, **kwargs)


def one_tick(sim, step_index=None):
    """Manually drive one scheduling tick through the sanitizer.

    Returns ``(demand, view, placement)`` so tests can re-invoke the
    checkers with doctored copies.
    """
    sim._scheduler.reset()
    if step_index is None:
        # Mid-trace: guaranteed nonzero demand.
        step_index = sim.trace.num_steps // 2
    demand = sim.trace.demand_at(step_index)
    view = sim.cluster.view()
    placement = sim._scheduler.place(demand, view)
    sim.sanitizer.check_placement(0, 60.0, demand, view, placement)
    sim.cluster.step(placement.allocation, sim.trace.step_seconds)
    sim._metrics.record(
        sim.cluster.time_s,
        air_temp_c=sim.cluster.air_temp_c_view,
        melt_fraction=sim.cluster.wax_melt_fraction_view,
        power_w=sim.cluster.power_w_view,
        wax_absorption_w=sim.cluster.wax_absorption_w_view,
        jobs=int(demand.sum()),
        hot_mask=placement.hot_group_mask,
    )
    return demand, view, placement


class TestResolveCheckLevel:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(CHECKS_ENV, "full")
        assert resolve_check_level("off") == "off"
        assert resolve_check_level("cheap") == "cheap"

    def test_none_defaults_off(self, monkeypatch):
        monkeypatch.delenv(CHECKS_ENV, raising=False)
        assert resolve_check_level(None, "vmt-wa(gv=22)") == "off"

    def test_env_supplies_default(self, monkeypatch):
        monkeypatch.setenv(CHECKS_ENV, "cheap")
        monkeypatch.delenv(CHECKS_POLICY_ENV, raising=False)
        assert resolve_check_level(None, "round-robin") == "cheap"

    def test_env_policy_scope(self, monkeypatch):
        monkeypatch.setenv(CHECKS_ENV, "full")
        monkeypatch.setenv(CHECKS_POLICY_ENV, "vmt-wa")
        assert resolve_check_level(None, "vmt-wa(gv=22)") == "full"
        assert resolve_check_level(None, "round-robin") == "off"
        assert resolve_check_level(None, None) == "off"

    def test_invalid_level_rejected(self, monkeypatch):
        with pytest.raises(ConfigurationError):
            resolve_check_level("paranoid")
        monkeypatch.setenv(CHECKS_ENV, "bogus")
        with pytest.raises(ConfigurationError):
            resolve_check_level(None, "vmt-wa")

    def test_levels_are_ordered(self):
        assert CHECK_LEVELS == ("off", "cheap", "full")


class TestCleanRuns:
    @pytest.mark.parametrize("policy", SCHEDULER_NAMES)
    def test_every_policy_clean_under_full(self, policy):
        sim = build_sim(policy, checks="full")
        sim.run()
        assert sim.sanitizer.level == "full"
        assert sim.sanitizer.ticks_checked == sim.trace.num_steps

    def test_fingerprint_identical_across_levels(self):
        fingerprints = {
            level: build_sim("vmt-wa", checks=level).run().fingerprint()
            for level in CHECK_LEVELS}
        assert len(set(fingerprints.values())) == 1, fingerprints

    def test_off_attaches_no_sanitizer(self):
        assert build_sim("vmt-ta", checks="off").sanitizer is None

    def test_gauges_track_progress(self):
        sim = build_sim("vmt-ta", checks="cheap")
        registry = MetricRegistry(capacity=4)
        sim.sanitizer.register_metrics(registry)
        assert registry.get("checks.level").value == 1.0  # cheap
        sim.run()
        assert registry.get("checks.ticks_checked").value \
            == float(sim.trace.num_steps)


class TestPlacementInvariants:
    def test_dropped_jobs_caught(self):
        sim = build_sim("round-robin")
        demand, view, placement = one_tick(sim)
        assert demand.sum() > 0
        empty = Placement(allocation=np.zeros_like(placement.allocation))
        with pytest.raises(InvariantViolation, match="job-conservation"):
            sim.sanitizer.check_placement(1, 120.0, demand, view, empty)

    def test_time_must_advance(self):
        sim = build_sim("round-robin")
        demand, view, placement = one_tick(sim)
        with pytest.raises(InvariantViolation, match="time-monotonic"):
            sim.sanitizer.check_placement(1, 60.0, demand, view,
                                          placement)

    def test_nonfinite_demand_rejected(self):
        sim = build_sim("round-robin")
        demand, view, placement = one_tick(sim)
        bad = demand.astype(np.float64)
        bad[0] = np.nan
        with pytest.raises(InvariantViolation, match="finite-state"):
            sim.sanitizer.check_placement(1, 120.0, bad, view, placement)

    def test_workload_mix_swap_caught(self):
        """Total-preserving swaps between workload types still violate."""
        sim = build_sim("round-robin")
        demand, view, placement = one_tick(sim)
        alloc = placement.allocation.copy()
        server, wtype = np.argwhere(alloc > 0)[0]
        other = (wtype + 1) % alloc.shape[1]
        alloc[server, wtype] -= 1
        alloc[server, other] += 1
        with pytest.raises(InvariantViolation, match="job-conservation"):
            sim.sanitizer.check_placement(
                1, 120.0, demand, view, Placement(allocation=alloc))

    def test_negative_counts_caught(self):
        sim = build_sim("round-robin")
        demand, view, placement = one_tick(sim)
        alloc = placement.allocation.copy()
        server, wtype = np.argwhere(alloc == 0)[0]
        donor = np.argwhere(alloc[:, wtype] > 0)[0][0]
        alloc[server, wtype] -= 1
        alloc[donor, wtype] += 1
        with pytest.raises(InvariantViolation, match="job-conservation"):
            sim.sanitizer.check_placement(
                1, 120.0, demand, view, Placement(allocation=alloc))

    def test_over_capacity_caught(self):
        sim = build_sim("round-robin")
        demand, view, placement = one_tick(sim)
        assert demand.sum() > view.cores_per_server
        alloc = np.zeros_like(placement.allocation)
        alloc[0, :] = demand  # everything piles on server 0
        with pytest.raises(InvariantViolation, match="capacity"):
            sim.sanitizer.check_placement(
                1, 120.0, demand, view, Placement(allocation=alloc))

    def test_estimator_out_of_range_caught(self):
        sim = build_sim("round-robin")
        demand, view, placement = one_tick(sim)
        bad_view = dataclasses.replace(
            view, wax_melt_estimate=np.full(view.num_servers, 1.5))
        with pytest.raises(InvariantViolation, match="estimator-range"):
            sim.sanitizer.check_placement(1, 120.0, demand, bad_view,
                                          placement)

    def test_hot_mask_must_be_prefix(self):
        sim = build_sim("vmt-wa")
        demand, view, placement = one_tick(sim)
        mask = np.zeros(view.num_servers, dtype=bool)
        mask[-1] = True
        doctored = Placement(allocation=placement.allocation,
                             hot_group_mask=mask)
        with pytest.raises(InvariantViolation, match="group-partition"):
            sim.sanitizer.check_placement(1, 120.0, demand, view,
                                          doctored)

    def test_vmt_ta_partition_is_eq1_exact(self):
        sim = build_sim("vmt-ta")
        demand, view, placement = one_tick(sim)
        expected = sim._scheduler.sizer.hot_size
        mask = np.zeros(view.num_servers, dtype=bool)
        mask[:expected + 1] = True  # one server too many
        doctored = Placement(allocation=placement.allocation,
                             hot_group_mask=mask)
        with pytest.raises(InvariantViolation, match="group-partition"):
            sim.sanitizer.check_placement(1, 120.0, demand, view,
                                          doctored)


class TestStateInvariants:
    def test_clean_tick_passes(self):
        sim = build_sim("vmt-wa")
        one_tick(sim)
        sim.sanitizer.check_state(0, 60.0, sim.trace.step_seconds)
        assert sim.sanitizer.ticks_checked == 1

    def test_melt_fraction_out_of_bounds_caught(self, monkeypatch):
        sim = build_sim("round-robin")
        one_tick(sim)
        bad = np.zeros(sim.cluster.num_servers)
        bad[3] = 1.5
        monkeypatch.setattr(Cluster, "wax_melt_fraction_view",
                            property(lambda self: bad))
        with pytest.raises(InvariantViolation,
                           match=r"melt-bounds.*server 3"):
            sim.sanitizer.check_state(0, 60.0, sim.trace.step_seconds)

    def test_cooling_identity_vs_cluster_state(self, monkeypatch):
        sim = build_sim("round-robin")
        one_tick(sim)
        true_power = sim.cluster.power_w_view.copy()
        monkeypatch.setattr(Cluster, "power_w_view",
                            property(lambda self: true_power * 1.01))
        with pytest.raises(InvariantViolation, match="cooling-identity"):
            sim.sanitizer.check_state(0, 60.0, sim.trace.step_seconds)

    def test_nonfinite_air_temp_caught(self, monkeypatch):
        sim = build_sim("round-robin")
        one_tick(sim)
        bad = sim.cluster.air_temp_c_view.copy()
        bad[1] = np.inf
        monkeypatch.setattr(Cluster, "air_temp_c_view",
                            property(lambda self: bad))
        with pytest.raises(InvariantViolation,
                           match=r"finite-state.*server 1"):
            sim.sanitizer.check_state(0, 60.0, sim.trace.step_seconds)

    def test_energy_balance_caught(self):
        """Enthalpy injected outside the physics step breaks the audit."""
        sim = build_sim("round-robin")
        one_tick(sim)
        sim.cluster._pcm._h[0] += 5000.0  # magic heat from nowhere
        with pytest.raises(InvariantViolation,
                           match=r"energy-balance.*server 0"):
            sim.sanitizer.check_state(0, 60.0, sim.trace.step_seconds)


class TestTracerIntegration:
    def test_violation_emits_structured_event(self, tmp_path):
        sim = build_sim("vmt-wa", telemetry=str(tmp_path))

        def corrupt(time_s, demand, placement, cluster):
            if time_s >= 1800.0:
                cluster._estimator.estimate[0] = 5.0

        sim.add_observer(corrupt)
        with pytest.raises(InvariantViolation, match="estimator-range"):
            sim.run()
        traces = list(tmp_path.glob("*.trace.jsonl"))
        assert len(traces) == 1
        events = [rec for rec in read_trace(traces[0])
                  if rec["name"] == "invariant-violation"]
        assert len(events) == 1
        fields = events[0]["fields"]
        assert fields["invariant"] == "estimator-range"
        assert fields["server"] == 0
        assert fields["step"] > 0
        assert "outside" in fields["message"]

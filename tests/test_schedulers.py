"""Unit tests for the four placement policies.

These drive the schedulers directly against synthetic cluster views, so
placement rules can be checked precisely (conservation, group
preference, spillover, keep-warm) without running full simulations.
"""

import numpy as np
import pytest

from repro.cluster.state import ClusterView
from repro.config import SimulationConfig, TraceConfig
from repro.core import (CoolestFirstScheduler, RoundRobinScheduler,
                        VMTThermalAwareScheduler, VMTWaxAwareScheduler,
                        make_scheduler)
from repro.core.policies import SCHEDULER_NAMES
from repro.core.scheduler import NUM_WORKLOADS
from repro.core.vmt_wa import (keep_warm_cores, keep_warm_power_w,
                               mean_hot_core_power_w)
from repro.errors import CapacityError, ConfigurationError, SchedulingError
from repro.workloads.workload import COLD_INDICES, HOT_INDICES

CONFIG = SimulationConfig(num_servers=10)


def view_for(config, temps=None, melt=None):
    n = config.num_servers
    return ClusterView(
        time_s=0.0,
        num_servers=n,
        cores_per_server=config.server.cores,
        air_temp_c=np.full(n, 25.0) if temps is None else np.asarray(temps,
                                                                     float),
        wax_melt_estimate=np.zeros(n) if melt is None else np.asarray(melt,
                                                                      float),
        melt_temp_c=config.wax.melt_temp_c,
    )


def demand(hot=0, cold=0):
    vector = np.zeros(NUM_WORKLOADS, dtype=np.int64)
    if hot:
        per = hot // len(HOT_INDICES)
        for i in HOT_INDICES:
            vector[i] = per
        vector[HOT_INDICES[0]] += hot - per * len(HOT_INDICES)
    if cold:
        per = cold // len(COLD_INDICES)
        for i in COLD_INDICES:
            vector[i] = per
        vector[COLD_INDICES[0]] += cold - per * len(COLD_INDICES)
    return vector


class TestSchedulerContract:
    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_conservation_is_verified(self, name):
        scheduler = make_scheduler(name, CONFIG)
        placement = scheduler.place(demand(hot=60, cold=40),
                                    view_for(CONFIG))
        assert placement.jobs_placed == 100
        assert np.all(placement.allocation >= 0)
        per_server = placement.allocation.sum(axis=1)
        assert per_server.max() <= CONFIG.server.cores

    def test_over_capacity_demand_raises(self):
        scheduler = RoundRobinScheduler(CONFIG)
        with pytest.raises(CapacityError):
            scheduler.place(demand(hot=CONFIG.total_cores + 1),
                            view_for(CONFIG))

    def test_negative_demand_raises(self):
        scheduler = RoundRobinScheduler(CONFIG)
        bad = demand(hot=5)
        bad[0] = -1
        with pytest.raises(SchedulingError):
            scheduler.place(bad, view_for(CONFIG))

    def test_wrong_demand_width_raises(self):
        scheduler = RoundRobinScheduler(CONFIG)
        with pytest.raises(SchedulingError):
            scheduler.place(np.array([1, 2]), view_for(CONFIG))

    def test_unknown_policy_name_raises(self):
        with pytest.raises(ConfigurationError):
            make_scheduler("hottest-first", CONFIG)


class TestRoundRobin:
    def test_spreads_jobs_evenly(self):
        scheduler = RoundRobinScheduler(CONFIG)
        placement = scheduler.place(demand(hot=55, cold=45),
                                    view_for(CONFIG))
        per_server = placement.allocation.sum(axis=1)
        assert per_server.max() - per_server.min() <= 1

    def test_no_hot_group_reported(self):
        scheduler = RoundRobinScheduler(CONFIG)
        placement = scheduler.place(demand(hot=10), view_for(CONFIG))
        assert placement.hot_group_mask is None

    def test_mix_varies_between_servers(self):
        """Arrival-order dealing leaves servers with different blends."""
        scheduler = RoundRobinScheduler(CONFIG)
        placement = scheduler.place(demand(hot=160, cold=160),
                                    view_for(CONFIG))
        hot_cols = list(HOT_INDICES)
        hot_per_server = placement.allocation[:, hot_cols].sum(axis=1)
        assert hot_per_server.std() > 0.0


class TestCoolestFirst:
    def test_packs_coolest_servers(self):
        scheduler = CoolestFirstScheduler(CONFIG)
        temps = np.arange(10, dtype=float) + 20.0  # server 0 coolest
        placement = scheduler.place(demand(hot=64),
                                    view_for(CONFIG, temps=temps))
        per_server = placement.allocation.sum(axis=1)
        assert per_server[0] == 32 and per_server[1] == 32
        assert per_server[2:].sum() == 0

    def test_hottest_servers_rest(self):
        scheduler = CoolestFirstScheduler(CONFIG)
        temps = np.array([30.0] * 9 + [45.0])
        placement = scheduler.place(demand(hot=32 * 9),
                                    view_for(CONFIG, temps=temps))
        assert placement.allocation[9].sum() == 0


class TestVMTThermalAware:
    def test_group_sizes_follow_equation1(self):
        scheduler = VMTThermalAwareScheduler(CONFIG)
        assert scheduler.sizer.hot_size == 6  # 22/35.7*10 = 6.16 -> 6

    def test_hot_jobs_go_to_hot_group(self):
        scheduler = VMTThermalAwareScheduler(CONFIG)
        placement = scheduler.place(demand(hot=60), view_for(CONFIG))
        hot_ids = np.flatnonzero(placement.hot_group_mask)
        cold_ids = np.flatnonzero(~placement.hot_group_mask)
        assert placement.allocation[hot_ids].sum() == 60
        assert placement.allocation[cold_ids].sum() == 0

    def test_cold_jobs_go_to_cold_group(self):
        scheduler = VMTThermalAwareScheduler(CONFIG)
        placement = scheduler.place(demand(cold=40), view_for(CONFIG))
        cold_ids = np.flatnonzero(~placement.hot_group_mask)
        assert placement.allocation[cold_ids].sum() == 40

    def test_hot_overflow_spills_to_cold_group(self):
        scheduler = VMTThermalAwareScheduler(CONFIG)
        hot_capacity = 6 * 32
        placement = scheduler.place(demand(hot=hot_capacity + 10),
                                    view_for(CONFIG))
        cold_ids = np.flatnonzero(~placement.hot_group_mask)
        assert placement.allocation[cold_ids].sum() == 10

    def test_cold_overflow_spills_to_hot_group(self):
        scheduler = VMTThermalAwareScheduler(CONFIG)
        cold_capacity = 4 * 32
        placement = scheduler.place(demand(cold=cold_capacity + 8),
                                    view_for(CONFIG))
        hot_ids = np.flatnonzero(placement.hot_group_mask)
        assert placement.allocation[hot_ids].sum() == 8

    def test_spill_preserves_type_mix(self):
        scheduler = VMTThermalAwareScheduler(CONFIG)
        placement = scheduler.place(demand(hot=300, cold=20),
                                    view_for(CONFIG))
        assert placement.jobs_placed == 320

    def test_even_distribution_within_group(self):
        scheduler = VMTThermalAwareScheduler(CONFIG)
        placement = scheduler.place(demand(hot=60), view_for(CONFIG))
        hot_ids = np.flatnonzero(placement.hot_group_mask)
        counts = placement.allocation[hot_ids].sum(axis=1)
        assert counts.max() - counts.min() <= 1

    def test_full_cluster_demand_places_everything(self):
        scheduler = VMTThermalAwareScheduler(CONFIG)
        placement = scheduler.place(demand(hot=200, cold=120),
                                    view_for(CONFIG))
        assert placement.jobs_placed == 320


class TestVMTWaxAware:
    def test_starts_at_equation1_size(self):
        scheduler = VMTWaxAwareScheduler(CONFIG)
        assert scheduler.hot_group_size == scheduler.base_sizer.hot_size

    def test_group_extends_per_melted_server(self):
        scheduler = VMTWaxAwareScheduler(CONFIG)
        melt = np.zeros(10)
        melt[:3] = 0.99  # three fully melted servers
        scheduler.place(demand(hot=60, cold=40),
                        view_for(CONFIG, melt=melt))
        assert scheduler.hot_group_size == scheduler.base_sizer.hot_size + 3

    def test_group_shrinks_when_wax_refreezes(self):
        scheduler = VMTWaxAwareScheduler(CONFIG)
        melt = np.zeros(10)
        melt[:4] = 0.99
        scheduler.place(demand(hot=60, cold=40),
                        view_for(CONFIG, melt=melt))
        scheduler.place(demand(hot=60, cold=40),
                        view_for(CONFIG, melt=np.zeros(10)))
        assert scheduler.hot_group_size == scheduler.base_sizer.hot_size

    def test_extension_capped_at_cluster(self):
        scheduler = VMTWaxAwareScheduler(CONFIG)
        scheduler.place(demand(hot=60, cold=40),
                        view_for(CONFIG, melt=np.full(10, 0.99)))
        assert scheduler.hot_group_size == 10

    def test_keep_warm_caps_melted_server_load(self):
        scheduler = VMTWaxAwareScheduler(CONFIG)
        melt = np.zeros(10)
        melt[0] = 0.99
        # High utilization so keep-warm engages: 70% of 320 cores.
        placement = scheduler.place(demand(hot=140, cold=84),
                                    view_for(CONFIG, melt=melt))
        warm_cores = placement.allocation[0].sum()
        assert 0 < warm_cores < CONFIG.server.cores

    def test_keep_warm_disengages_at_low_utilization(self):
        scheduler = VMTWaxAwareScheduler(CONFIG)
        melt = np.zeros(10)
        melt[0] = 0.99
        placement = scheduler.place(demand(hot=20, cold=10),
                                    view_for(CONFIG, melt=melt))
        # Low load: melted server is just a normal member again; all jobs
        # still placed.
        assert placement.jobs_placed == 30

    def test_reset_restores_base_group(self):
        scheduler = VMTWaxAwareScheduler(CONFIG)
        scheduler.place(demand(hot=60, cold=40),
                        view_for(CONFIG, melt=np.full(10, 0.99)))
        scheduler.reset()
        assert scheduler.hot_group_size == scheduler.base_sizer.hot_size

    def test_full_cluster_demand_with_melted_servers(self):
        scheduler = VMTWaxAwareScheduler(CONFIG)
        melt = np.zeros(10)
        melt[:6] = 0.99
        placement = scheduler.place(demand(hot=200, cold=120),
                                    view_for(CONFIG, melt=melt))
        assert placement.jobs_placed == 320


class TestKeepWarmHelpers:
    def test_power_target_above_idle(self):
        power = keep_warm_power_w(CONFIG)
        # Must exceed what's needed to sit at the melt point.
        needed = ((CONFIG.wax.melt_temp_c - CONFIG.thermal.inlet_temp_c)
                  / CONFIG.thermal.r_air_c_per_w
                  - CONFIG.server.idle_power_w)
        assert power > needed

    def test_mean_hot_power_weighted_by_demand(self):
        hot_demand = np.zeros(NUM_WORKLOADS)
        hot_demand[HOT_INDICES[0]] = 100  # all WebSearch
        weighted = mean_hot_core_power_w(CONFIG, hot_demand)
        assert weighted == pytest.approx(37.2 / 8)

    def test_mean_hot_power_unweighted_fallback(self):
        unweighted = mean_hot_core_power_w(CONFIG)
        assert unweighted == pytest.approx((37.2 + 60.9 + 59.5) / 3 / 8)

    def test_keep_warm_cores_bounded_by_capacity(self):
        cores = keep_warm_cores(CONFIG)
        assert 0 < cores <= CONFIG.server.cores

"""Unit tests for the analysis helpers: reporting, regions, sweeps."""

import numpy as np
import pytest

from repro.analysis.regions import (MIN_HOT_SHARE, MixRegion,
                                    all_figure1_panels,
                                    blended_exhaust_temp_c,
                                    classify_mix_region, figure1_panel,
                                    hottest_grouped_temp_c)
from repro.analysis.reporting import (format_heatmap, format_series,
                                      format_table)
from repro.config import ServerConfig, ThermalConfig, WaxConfig
from repro.errors import ConfigurationError
from repro.workloads.mix import WorkloadMix
from repro.workloads.workload import WORKLOADS

SERVER = ServerConfig()
THERMAL = ThermalConfig()
WAX = WaxConfig()


class TestFormatTable:
    def test_alignment_and_rule(self):
        out = format_table(["a", "value"], [("x", 1.5), ("yy", 22.25)])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_rejects_ragged_rows(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [("only-one",)])

    def test_large_floats_get_thousands_separator(self):
        out = format_table(["n"], [(2_688_000.0,)])
        assert "2,688,000" in out


class TestFormatSeries:
    def test_downsamples_long_series(self):
        xs = np.arange(1000.0)
        out = format_series("s", xs, xs, max_points=10)
        assert len(out.splitlines()) == 13  # title + header + rule + 10

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            format_series("s", [1.0, 2.0], [1.0])


class TestFormatHeatmap:
    def test_renders_rows_and_header(self):
        matrix = np.random.default_rng(0).random((100, 30))
        out = format_heatmap(matrix, title="T", max_rows=10, max_cols=40)
        lines = out.splitlines()
        assert "T (range" in lines[0]
        assert len(lines) == 11
        # Input is (time=100, servers=30): rows are the 30 servers capped
        # at 10, columns the 100 ticks capped at max_cols=40.
        assert all(len(line) == 40 for line in lines[1:])

    def test_constant_matrix_does_not_crash(self):
        out = format_heatmap(np.full((5, 5), 3.0))
        assert "3.0..3.0" in out

    def test_rejects_non_2d(self):
        with pytest.raises(ConfigurationError):
            format_heatmap(np.zeros(5))


class TestRegions:
    def test_blended_temperature_interpolates_between_endpoints(self):
        hot = WORKLOADS["VideoEncoding"]
        cold = WORKLOADS["VirusScan"]
        t_hot = blended_exhaust_temp_c(WorkloadMix.pair(hot, cold, 1.0),
                                       SERVER, THERMAL)
        t_cold = blended_exhaust_temp_c(WorkloadMix.pair(hot, cold, 0.0),
                                        SERVER, THERMAL)
        t_mid = blended_exhaust_temp_c(WorkloadMix.pair(hot, cold, 0.5),
                                       SERVER, THERMAL)
        assert t_cold < t_mid < t_hot

    def test_all_hot_mix_is_tts_region(self):
        mix = WorkloadMix.of({WORKLOADS["VideoEncoding"]: 1.0})
        assert classify_mix_region(mix, SERVER, THERMAL, WAX) is \
            MixRegion.TTS

    def test_all_cold_mix_is_neither(self):
        mix = WorkloadMix.of({WORKLOADS["VirusScan"]: 1.0})
        assert classify_mix_region(mix, SERVER, THERMAL, WAX) is \
            MixRegion.NEITHER

    def test_lukewarm_mix_needs_vmt(self):
        mix = WorkloadMix.of({WORKLOADS["WebSearch"]: 0.4,
                              WORKLOADS["DataCaching"]: 0.6})
        assert classify_mix_region(mix, SERVER, THERMAL, WAX) is \
            MixRegion.NEEDS_VMT

    def test_tiny_hot_share_is_neither(self):
        mix = WorkloadMix.of({
            WORKLOADS["WebSearch"]: MIN_HOT_SHARE / 2,
            WORKLOADS["VirusScan"]: 1.0 - MIN_HOT_SHARE / 2})
        assert classify_mix_region(mix, SERVER, THERMAL, WAX) is \
            MixRegion.NEITHER

    def test_grouped_temp_of_cold_mix_is_inlet(self):
        mix = WorkloadMix.of({WORKLOADS["VirusScan"]: 1.0})
        assert hottest_grouped_temp_c(mix, SERVER, THERMAL, WAX) == \
            THERMAL.inlet_temp_c

    def test_panel_structure(self):
        panel = figure1_panel("DataCaching", "WebSearch", num_points=21)
        assert len(panel.work_ratios) == 21
        assert len(panel.regions) == 21
        assert panel.title == "DataCaching-WebSearch Mix"
        spans = panel.region_spans()
        assert spans[0][1] == 0.0
        assert spans[-1][2] == 100.0

    def test_temps_within_figure_axis_range(self):
        """Fig. 1's y-axis spans 20-50 C; our curves must too."""
        for panel in all_figure1_panels(num_points=21):
            assert panel.exhaust_temps_c.min() > 20.0
            assert panel.exhaust_temps_c.max() < 50.0

    def test_every_region_type_appears_across_panels(self):
        seen = set()
        for panel in all_figure1_panels(num_points=51):
            seen.update(panel.regions)
        assert seen == {MixRegion.TTS, MixRegion.NEEDS_VMT,
                        MixRegion.NEITHER}

    def test_rejects_bad_utilization(self):
        mix = WorkloadMix.of({WORKLOADS["WebSearch"]: 1.0})
        with pytest.raises(ConfigurationError):
            blended_exhaust_temp_c(mix, SERVER, THERMAL, utilization=1.5)

"""CLI subcommand coverage beyond the basics in test_multi_io_cli."""

import pytest

from repro.cli import main


class TestCompare:
    def test_compare_prints_reductions(self, capsys):
        assert main(["compare", "--servers", "15",
                     "--policies", "vmt-ta"]) == 0
        out = capsys.readouterr().out
        assert "round-robin" in out
        assert "vmt-ta" in out
        assert "%" in out


class TestSweep:
    def test_sweep_reports_best(self, capsys):
        assert main(["sweep", "--servers", "12", "--start", "20",
                     "--stop", "24", "--step", "4",
                     "--policies", "vmt-ta"]) == 0
        out = capsys.readouterr().out
        assert "best vmt-ta" in out
        assert "GV" in out


class TestHeatmap:
    def test_heatmap_renders_both_maps(self, capsys):
        assert main(["heatmap", "--servers", "12",
                     "--policy", "round-robin"]) == 0
        out = capsys.readouterr().out
        assert "air temperature" in out
        assert "wax melted" in out


class TestRun:
    def test_run_without_save(self, capsys):
        assert main(["run", "--servers", "12",
                     "--policy", "coolest-first"]) == 0
        out = capsys.readouterr().out
        assert "coolest-first" in out

    def test_inlet_stdev_flag(self, capsys):
        assert main(["run", "--servers", "12", "--policy", "vmt-wa",
                     "--inlet-stdev", "1.0", "--seed", "3"]) == 0
        assert "peak_cooling_kw" in capsys.readouterr().out


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self):
        import subprocess, sys
        proc = subprocess.run([sys.executable, "-m", "repro", "info"],
                              capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0
        assert "WebSearch" in proc.stdout


class TestErrorPaths:
    def test_bad_policy_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["run", "--policy", "hottest-first"])

    def test_missing_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            main([])

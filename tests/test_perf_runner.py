"""Tests for the parallel experiment engine, trace cache and profiler.

The load-bearing property of the whole ``repro.perf`` package is that
none of it changes a single simulated bit: parallel equals serial,
cached trace equals regenerated trace, profiled equals unprofiled.  The
:meth:`~repro.cluster.metrics.SimulationResult.fingerprint` hash makes
those assertions exact rather than approximate.
"""

import numpy as np
import pytest

from repro.cluster.simulation import run_simulation
from repro.config import SimulationConfig, TraceConfig, paper_cluster_config
from repro.core.policies import SCHEDULER_NAMES, make_scheduler
from repro.errors import SimulationError
from repro.perf import (ExperimentRunner, RunFailure, RunSpec,
                        TickProfiler, TraceCache, clear_shared_cache,
                        execute_spec, shared_trace)
from repro.perf.profiler import REFERENCE_SECTIONS


def tiny_config(seed=11, **overrides):
    config = paper_cluster_config(num_servers=6, grouping_value=22.0,
                                  seed=seed, **overrides)
    return config.replace(trace=TraceConfig(duration_hours=2.0))


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_shared_cache()
    yield
    clear_shared_cache()


class TestRunSpec:
    def test_name_defaults_to_policy_and_identity(self):
        spec = RunSpec(tiny_config(), "vmt-ta")
        assert spec.name == "vmt-ta[servers=6,seed=11]"

    def test_label_wins(self):
        spec = RunSpec(tiny_config(), "vmt-ta", label="headline")
        assert spec.name == "headline"

    def test_specs_are_picklable(self):
        import pickle
        spec = RunSpec(tiny_config(), "vmt-wa", record_heatmaps=True)
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestDeterminism:
    def test_parallel_matches_serial_for_every_policy(self):
        """The headline guarantee: 5 policies, pool vs in-process."""
        specs = [RunSpec(tiny_config(), policy)
                 for policy in SCHEDULER_NAMES]
        serial = ExperimentRunner(max_workers=1).run(specs)
        clear_shared_cache()
        parallel = ExperimentRunner(max_workers=2).run(specs)
        for policy, a, b in zip(SCHEDULER_NAMES, serial, parallel):
            assert a.fingerprint() == b.fingerprint(), policy

    def test_runner_matches_direct_run_simulation(self):
        config = tiny_config()
        direct = run_simulation(config, make_scheduler("vmt-ta", config),
                                record_heatmaps=False)
        via_runner = ExperimentRunner(1).run_one(RunSpec(config, "vmt-ta"))
        assert direct.fingerprint() == via_runner.fingerprint()

    def test_cache_bypass_is_bit_identical(self):
        config = tiny_config()
        cached = execute_spec(RunSpec(config, "vmt-wa"))
        bypass = execute_spec(RunSpec(config, "vmt-wa",
                                      use_trace_cache=False))
        assert cached.fingerprint() == bypass.fingerprint()

    def test_results_come_back_in_submission_order(self):
        specs = [RunSpec(tiny_config(seed=seed), "round-robin")
                 for seed in (3, 1, 2)]
        results = ExperimentRunner(2).run(specs)
        assert [r.config.seed for r in results] == [3, 1, 2]

    def test_heatmap_runs_survive_the_pool(self):
        spec = RunSpec(tiny_config(), "vmt-ta", record_heatmaps=True)
        serial = ExperimentRunner(1).run_one(spec)
        parallel = ExperimentRunner(2).run([spec])[0]
        assert serial.temp_heatmap is not None
        assert serial.fingerprint() == parallel.fingerprint()


class TestTraceCache:
    def test_identical_specs_build_the_trace_once(self):
        cache = TraceCache()
        config = tiny_config()
        first = cache.get_for(config)
        again = cache.get_for(config)
        assert first is again
        assert cache.misses == 1 and cache.hits == 1

    def test_different_seed_is_a_different_trace(self):
        cache = TraceCache()
        a = cache.get_for(tiny_config(seed=1))
        b = cache.get_for(tiny_config(seed=2))
        assert cache.misses == 2
        assert any(not np.array_equal(a.demand_at(i), b.demand_at(i))
                   for i in range(a.num_steps))

    def test_gv_does_not_key_the_cache(self):
        """A GV sweep shares one trace across every sweep point."""
        import dataclasses
        cache = TraceCache()
        config = tiny_config()
        for gv in (18.0, 26.0):
            cache.get_for(config.replace(scheduler=dataclasses.replace(
                config.scheduler, grouping_value=gv)))
        assert cache.misses == 1 and cache.hits == 1

    def test_cached_trace_equals_in_simulation_generation(self):
        """The cache replays the exact seeded path ClusterSimulation uses."""
        config = tiny_config()
        with_cache = execute_spec(RunSpec(config, "coolest-first"))
        clear_shared_cache()
        direct = run_simulation(config,
                                make_scheduler("coolest-first", config),
                                record_heatmaps=False)
        assert with_cache.fingerprint() == direct.fingerprint()

    def test_shifted_variants_derive_from_the_cached_base(self):
        config = tiny_config()
        base = shared_trace(config)
        shifted = shared_trace(config, shift_hours=1.0)
        assert shifted is not base
        assert shifted is shared_trace(config, shift_hours=1.0)


class TestProfiler:
    def test_profiling_is_bit_identical(self):
        config = tiny_config()
        plain = execute_spec(RunSpec(config, "vmt-ta"))
        profiled = execute_spec(RunSpec(config, "vmt-ta", profile=True))
        assert plain.fingerprint() == profiled.fingerprint()
        assert plain.profile is None

    def test_profile_covers_every_section(self):
        result = execute_spec(RunSpec(tiny_config(), "vmt-ta",
                                      profile=True))
        assert result.profile is not None
        # "checks" only appears when a sanitizer is attached.
        assert set(result.profile) == set(REFERENCE_SECTIONS) - {"checks"}
        ticks = result.times_s.shape[0]
        for section, timing in result.profile.items():
            assert timing["calls"] == ticks, section
            assert timing["total_s"] > 0.0, section

    def test_checks_section_times_the_sanitizer(self):
        result = execute_spec(RunSpec(tiny_config(), "vmt-ta",
                                      profile=True, checks="cheap"))
        assert set(result.profile) == set(REFERENCE_SECTIONS)
        ticks = result.times_s.shape[0]
        timing = result.profile["checks"]
        # Placement and state audits are timed separately each tick.
        assert timing["calls"] == 2 * ticks
        assert timing["total_s"] > 0.0

    def test_profile_survives_the_process_pool(self):
        spec = RunSpec(tiny_config(), "vmt-wa", profile=True,
                       checks="cheap")
        result = ExperimentRunner(2).run([spec])[0]
        assert result.profile is not None
        assert set(result.profile) == set(REFERENCE_SECTIONS)

    def test_profiler_accumulates_and_resets(self):
        profiler = TickProfiler()
        profiler.add("pcm", 0.5)
        profiler.add("pcm", 0.25)
        profiler.count_tick()
        timing = profiler.timings()["pcm"]
        assert timing.calls == 2
        assert timing.total_s == pytest.approx(0.75)
        assert timing.mean_us == pytest.approx(0.375e6)
        profiler.reset()
        assert profiler.timings() == {} and profiler.ticks == 0


class TestErrorCapture:
    def failing_spec(self):
        # The scheduler is built inside the worker, so an unknown policy
        # name raises there -- exercising in-worker capture end to end.
        config = SimulationConfig(
            num_servers=2, trace=TraceConfig(duration_hours=2.0), seed=1)
        return RunSpec(config, "no-such-policy", label="doomed")

    def test_failure_names_the_spec(self):
        with pytest.raises(SimulationError, match="doomed"):
            ExperimentRunner(1).run([self.failing_spec()])

    def test_worker_failure_propagates_from_the_pool(self):
        specs = [RunSpec(tiny_config(), "round-robin"),
                 self.failing_spec()]
        with pytest.raises(SimulationError, match="doomed"):
            ExperimentRunner(2).run(specs)

    def test_raise_on_error_false_returns_failures_in_place(self):
        specs = [RunSpec(tiny_config(), "round-robin"),
                 self.failing_spec()]
        outcomes = ExperimentRunner(1).run(specs, raise_on_error=False)
        assert not isinstance(outcomes[0], RunFailure)
        failure = outcomes[1]
        assert isinstance(failure, RunFailure)
        assert failure.spec.label == "doomed"
        assert failure.error_type == "ConfigurationError"
        assert "no-such-policy" in failure.message
        assert "ConfigurationError" in failure.traceback_text

    def test_bad_worker_count_rejected(self):
        with pytest.raises(SimulationError):
            ExperimentRunner(0)

    def test_empty_batch(self):
        assert ExperimentRunner(4).run([]) == []


class TestSweepIntegration:
    def test_gv_sweep_parallel_equals_serial(self):
        from repro.analysis.sweep import gv_sweep
        kwargs = dict(num_servers=6, seed=3)
        serial = gv_sweep([18.0, 22.0], policies=("vmt-ta",), **kwargs)
        clear_shared_cache()
        parallel = gv_sweep([18.0, 22.0], policies=("vmt-ta",),
                            max_workers=2,
                            **kwargs)
        assert np.array_equal(serial.reductions["vmt-ta"],
                              parallel.reductions["vmt-ta"])

    def test_multi_cluster_derives_per_cluster_seeds(self):
        """Regression: clusters used to share the root seed's trace."""
        from repro.cluster.multi import run_datacenter
        config = tiny_config(seed=5)
        result = run_datacenter(config, 2, policy="round-robin")
        a, b = result.cluster_results
        assert a.config.seed == 5 and b.config.seed == 6
        assert not np.array_equal(a.cooling_load_w, b.cooling_load_w)

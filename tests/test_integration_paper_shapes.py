"""Integration tests: the paper's headline shapes must reproduce.

Each test runs full two-day simulations on the paper's 100-server sweep
cluster and asserts the *qualitative* result the paper reports, with
tolerant numeric bands (our substrate is a calibrated simulator, not the
authors' testbed).  These are the slowest tests in the suite.
"""

import numpy as np
import pytest

from repro import (make_scheduler, paper_cluster_config, run_simulation)

pytestmark = pytest.mark.integration


@pytest.fixture(scope="module")
def runs():
    """Shared simulation results for the headline configuration."""
    results = {}
    base = paper_cluster_config(num_servers=100, grouping_value=22.0)
    results["rr"] = run_simulation(base, make_scheduler("round-robin", base))
    results["cf"] = run_simulation(
        base, make_scheduler("coolest-first", base), record_heatmaps=False)
    results["ta22"] = run_simulation(base, make_scheduler("vmt-ta", base))
    results["wa22"] = run_simulation(
        base, make_scheduler("vmt-wa", base), record_heatmaps=False)
    for gv in (20, 24):
        config = paper_cluster_config(num_servers=100, grouping_value=gv)
        results[f"ta{gv}"] = run_simulation(
            config, make_scheduler("vmt-ta", config),
            record_heatmaps=False)
        results[f"wa{gv}"] = run_simulation(
            config, make_scheduler("vmt-wa", config),
            record_heatmaps=False)
    return results


def reduction(runs, key):
    return runs[key].peak_reduction_vs(runs["rr"]) * 100.0


class TestBaselines:
    def test_round_robin_melts_no_wax(self, runs):
        """Fig. 9: RR never melts significant wax."""
        assert runs["rr"].max_melt_fraction < 0.02

    def test_round_robin_mean_temp_just_below_melt(self, runs):
        """Fig. 12: RR average 'almost but not quite' reaches 35.7 C."""
        peak_mean = runs["rr"].mean_temp_c.max()
        assert 34.0 < peak_mean < 35.7

    def test_coolest_first_melts_no_wax(self, runs):
        """Fig. 10: coolest-first does not melt wax either."""
        assert runs["cf"].max_melt_fraction < 0.02

    def test_coolest_first_gives_no_reduction(self, runs):
        assert abs(reduction(runs, "cf")) < 1.0

    def test_coolest_first_tightens_temperature_spread(self, runs):
        """Fig. 10 vs Fig. 9: coolest-first has lower server-to-server
        temperature deviation than round robin at peak load."""
        base = paper_cluster_config(num_servers=100, grouping_value=22.0)
        cf = run_simulation(base, make_scheduler("coolest-first", base))
        peak_tick = int(np.argmax(runs["rr"].cooling_load_w))
        rr_spread = runs["rr"].temp_heatmap[peak_tick].std()
        cf_spread = cf.temp_heatmap[peak_tick].std()
        assert cf_spread < rr_spread


class TestVMTThermalAware:
    def test_gv22_reduction_near_paper_headline(self, runs):
        """Fig. 13: GV=22 gives the best reduction, ~12.8%."""
        assert 10.0 < reduction(runs, "ta22") < 15.0

    def test_gv22_melts_the_hot_group(self, runs):
        # 62 of 100 servers are hot; cluster-mean melt approaches 0.62.
        assert runs["ta22"].max_melt_fraction > 0.5

    def test_gv20_melts_early_and_loses_the_benefit(self, runs):
        """Fig. 13: GV=20 melts out mid-peak -> ~0% reduction."""
        assert reduction(runs, "ta20") < 2.0
        assert runs["ta20"].max_melt_fraction > 0.5  # wax did melt...

    def test_gv24_melts_late_and_keeps_partial_benefit(self, runs):
        """Fig. 13: GV=24 gives roughly two-thirds of the best value."""
        assert 6.0 < reduction(runs, "ta24") < reduction(runs, "ta22")
        assert runs["ta24"].max_melt_fraction < runs["ta22"].max_melt_fraction

    def test_hot_group_exceeds_melt_temp_while_average_does_not(self, runs):
        """Fig. 11/12: the whole point of VMT."""
        result = runs["ta22"]
        assert np.nanmax(result.hot_group_mean_temp_c) > 35.7
        assert result.mean_temp_c.max() < 35.7

    def test_hot_group_temperature_rises_as_gv_falls(self, runs):
        """Fig. 12: smaller GV -> fewer, hotter servers."""
        assert np.nanmax(runs["ta20"].hot_group_mean_temp_c) > \
            np.nanmax(runs["ta22"].hot_group_mean_temp_c) > \
            np.nanmax(runs["ta24"].hot_group_mean_temp_c)

    def test_only_hot_group_melts_in_heatmap(self, runs):
        """Fig. 11b: wax melts in the hot group rows only."""
        melt = runs["ta22"].melt_heatmap
        hot_size = 62
        assert melt[:, :hot_size].max() > 0.9
        assert melt[:, hot_size:].max() < 0.1


class TestVMTWaxAware:
    def test_matches_ta_at_the_optimum(self, runs):
        """Fig. 16/18: at GV=22 WA and TA are equivalent."""
        assert abs(reduction(runs, "wa22") - reduction(runs, "ta22")) < 1.5

    def test_rescues_the_too_low_gv(self, runs):
        """Fig. 16: at GV=20, WA extends the hot group and keeps a
        meaningful reduction where TA collapses to zero."""
        assert reduction(runs, "wa20") > reduction(runs, "ta20") + 3.0
        assert reduction(runs, "wa20") > 4.0

    def test_group_extension_happens_at_gv20(self, runs):
        sizes = runs["wa20"].hot_group_size
        assert sizes.max() > sizes.min()
        assert sizes[0] == 56  # Eq. 1 at GV=20

    def test_matches_ta_at_gv24(self, runs):
        """Fig. 16: wax never fully melts at GV=24, so WA ~= TA."""
        assert abs(reduction(runs, "wa24") - reduction(runs, "ta24")) < 1.0

    def test_wa_never_exceeds_the_raw_peak(self, runs):
        """Releasing stored heat must never push the peak above RR's."""
        for key in ("wa20", "wa22", "wa24"):
            assert reduction(runs, key) > -1.0


class TestEnergyAccounting:
    def test_total_it_energy_matches_between_policies(self, runs):
        """VMT moves heat in time, it does not create or destroy it."""
        rr_energy = runs["rr"].it_power_w.sum()
        ta_energy = runs["ta22"].it_power_w.sum()
        assert ta_energy == pytest.approx(rr_energy, rel=0.01)

    def test_day1_heat_is_released_before_day2(self, runs):
        """TTS time-shifts heat: day 1's stored energy is fully released
        (the wax refrozen) before the day-2 ramp, by hour 36."""
        result = runs["ta22"]
        tick_36h = int(np.argmin(np.abs(result.times_hours - 36.0)))
        assert result.mean_melt_fraction[tick_36h] < 0.05
        net_day1 = result.wax_absorption_w[:tick_36h].sum()
        gross_day1 = np.abs(result.wax_absorption_w[:tick_36h]).sum()
        assert abs(net_day1) < 0.1 * gross_day1

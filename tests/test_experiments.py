"""Tests for the analysis experiment harness (shrunken sizes).

The benchmarks run the full-size experiments; these tests exercise the
same entry points at reduced scale so the harness logic itself (shapes,
bookkeeping, parameter plumbing) is covered quickly.
"""

import numpy as np
import pytest

from repro.analysis.experiments import (figure6_qos, figure7_reliability,
                                        figure8_trace,
                                        figure12_hot_group_temps,
                                        figure13_cooling_loads,
                                        figure17_wax_threshold,
                                        figure18_gv_sweep,
                                        heatmap_experiment,
                                        table1_workloads, tco_analysis)
from repro.analysis.sweep import gv_sweep, seed_averaged_sweep


class TestLightweightExperiments:
    def test_figure6_structure(self):
        curves = figure6_qos(num_points=5)
        assert len(curves.caching_rps) == 5
        assert set(curves.caching_mean_ms) == {"2C+Search", "4C+Search",
                                               "6C"}
        assert set(curves.search_mean_s) == {"2C+Caching", "4C+Caching",
                                             "6C"}

    def test_figure7_structure(self):
        curves = figure7_reliability(months=12)
        assert len(curves.months) == 13
        assert curves.final_gap_percent > 0

    def test_figure8_landmarks(self):
        trace = figure8_trace(num_servers=20)
        assert len(trace.per_workload) == 5
        assert trace.peak_utilization > 0.9

    def test_table1_rows(self):
        rows = table1_workloads()
        assert [r[0] for r in rows] == ["WebSearch", "DataCaching",
                                        "VideoEncoding", "VirusScan",
                                        "Clustering"]

    def test_tco_with_fixed_reduction_skips_simulation(self):
        study = tco_analysis(peak_reduction=0.128)
        assert study.savings.gross_cooling_savings_usd == pytest.approx(
            2_688_000.0)
        assert study.impact.additional_servers == 7_339


class TestSimulationBackedExperiments:
    """Small clusters keep these under a second or two apiece."""

    def test_heatmap_experiment_records_heatmaps(self):
        result = heatmap_experiment("round-robin", num_servers=20)
        assert result.temp_heatmap is not None
        assert result.temp_heatmap.shape[1] == 20

    def test_figure12_hot_group_series(self):
        temps = figure12_hot_group_temps(grouping_values=(22,),
                                         num_servers=20)
        assert 22 in temps.per_gv
        assert len(temps.per_gv[22]) == len(temps.round_robin_mean)
        assert np.isfinite(temps.per_gv[22]).all()

    def test_figure13_reduction_labels(self):
        study = figure13_cooling_loads(grouping_values=(22,),
                                       num_servers=20)
        assert set(study.reductions_percent) == {"round-robin",
                                                 "coolest-first", "GV=22"}
        assert study.reductions_percent["round-robin"] == 0.0
        assert "GV=22" in study.series_kw

    def test_figure17_threshold_axis(self):
        sweep = figure17_wax_threshold(thresholds=(0.9, 0.98),
                                       num_servers=20)
        assert list(sweep.thresholds) == [0.9, 0.98]
        assert len(sweep.reductions_percent) == 2

    def test_figure18_policies(self):
        sweep = figure18_gv_sweep(grouping_values=(20, 22),
                                  num_servers=20)
        assert set(sweep.reductions) == {"vmt-ta", "vmt-wa"}
        assert len(sweep.values) == 2

    def test_gv_sweep_best(self):
        sweep = gv_sweep((20, 22), policies=("vmt-ta",), num_servers=20)
        gv, value = sweep.best("vmt-ta")
        assert gv in (20.0, 22.0)
        assert isinstance(value, float)

    def test_seed_averaged_sweep_averages(self):
        sweep = seed_averaged_sweep((22,), "vmt-ta", num_servers=20,
                                    seeds=(0, 1), inlet_stdev_c=1.0)
        assert sweep.reductions["vmt-ta"].shape == (1,)

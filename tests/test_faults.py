"""Fault injection and graceful degradation.

Covers the fault subsystem bottom-up: the sensor fault bank, the fault
configuration, the shared fault state, the injector's scripted and
hazard-driven events, and the end-to-end guarantees -- every scheduler
survives a mid-trace outage, displaced jobs re-place within one tick,
``CapacityError`` fires only on genuine exhaustion, fault-free runs stay
bit-identical, and VMT-WA detects a stuck wax sensor and degrades to
thermal-aware placement.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.cluster.simulation import ClusterSimulation, run_simulation
from repro.config import (CoolingFaultSpec, FaultConfig, SchedulerConfig,
                          SensorFaultSpec, ServerFaultSpec,
                          SimulationConfig, TraceConfig)
from repro.core.policies import make_scheduler
from repro.errors import (CapacityError, ConfigurationError,
                          FaultInjectionError, SensorError,
                          SimulationError)
from repro.faults import (FaultInjector, FaultState, cooling_derate,
                          kill_hot_group_fraction, kill_servers,
                          merge_scenarios, stuck_wax_sensors,
                          temperature_hazard)
from repro.server.sensors import SensorFaultBank
from repro.thermal.throttling import CPUThermalModel
from repro.workloads.trace import TraceMatrix
from repro.workloads.workload import WORKLOAD_LIST

POLICIES = ("round-robin", "coolest-first", "vmt-ta", "vmt-wa")


def _faulted(config: SimulationConfig,
             faults: FaultConfig) -> SimulationConfig:
    return dataclasses.replace(config, faults=faults)


# -- SensorFaultBank --------------------------------------------------------


class TestSensorFaultBank:
    def test_healthy_bank_is_pass_through(self):
        bank = SensorFaultBank(4)
        readings = np.array([1.0, 2.0, 3.0, 4.0])
        assert bank.apply(readings) is readings

    def test_stuck_latches_first_post_fault_reading(self):
        bank = SensorFaultBank(3)
        bank.set_fault(1, "stuck", time_s=10.0)
        first = bank.apply(np.array([1.0, 20.0, 3.0]), time_s=10.0)
        later = bank.apply(np.array([5.0, 99.0, 7.0]), time_s=20.0)
        assert first[1] == 20.0
        assert later[1] == 20.0
        assert later[0] == 5.0 and later[2] == 7.0

    def test_stuck_at_explicit_value(self):
        bank = SensorFaultBank(2)
        bank.set_fault(0, "stuck", stuck_value=42.0)
        out = bank.apply(np.array([1.0, 2.0]))
        assert out[0] == 42.0 and out[1] == 2.0

    def test_dropout_reads_fallback(self):
        bank = SensorFaultBank(2, fallback_value=-7.0)
        bank.set_fault(1, "dropout")
        out = bank.apply(np.array([1.0, 2.0]))
        assert out[1] == -7.0

    def test_drift_grows_with_elapsed_time(self):
        bank = SensorFaultBank(1)
        bank.set_fault(0, "drift", time_s=0.0, drift_per_hour=2.0)
        mid = bank.apply(np.array([10.0]), time_s=1800.0)
        late = bank.apply(np.array([10.0]), time_s=3600.0)
        assert mid[0] == pytest.approx(11.0)
        assert late[0] == pytest.approx(12.0)

    def test_clear_restores_pass_through(self):
        bank = SensorFaultBank(2)
        bank.set_fault(0, "dropout")
        bank.clear_fault(0)
        readings = np.array([1.0, 2.0])
        assert bank.apply(readings) is readings
        assert not bank.any_faulty

    def test_faulty_mask(self):
        bank = SensorFaultBank(3)
        bank.set_fault(2, "stuck")
        assert bank.faulty.tolist() == [False, False, True]

    def test_unknown_mode_raises(self):
        bank = SensorFaultBank(2)
        with pytest.raises(SensorError):
            bank.set_fault(0, "melted")

    def test_bad_channel_raises(self):
        bank = SensorFaultBank(2)
        with pytest.raises(SensorError):
            bank.set_fault(5, "stuck")


# -- configuration ----------------------------------------------------------


class TestFaultConfigValidation:
    def test_default_is_disabled_and_valid(self):
        cfg = FaultConfig()
        cfg.validate()
        assert not cfg.enabled
        assert not cfg.any_scripted

    def test_rejects_bad_capacity_factor(self):
        cfg = FaultConfig(enabled=True, cooling_faults=(
            CoolingFaultSpec(time_s=0.0, capacity_factor=1.5),))
        with pytest.raises(ConfigurationError):
            cfg.validate()

    def test_rejects_bad_sensor_mode(self):
        cfg = FaultConfig(enabled=True, sensor_faults=(
            SensorFaultSpec(time_s=0.0, server_id=0, mode="exploded"),))
        with pytest.raises(ConfigurationError):
            cfg.validate()

    def test_rejects_negative_fault_time(self):
        cfg = FaultConfig(enabled=True, server_faults=(
            ServerFaultSpec(time_s=-1.0, server_id=0),))
        with pytest.raises(ConfigurationError):
            cfg.validate()

    def test_simulation_config_rejects_out_of_range_server(
            self, small_config):
        bad = _faulted(small_config,
                       kill_servers([small_config.num_servers], 1.0))
        with pytest.raises(ConfigurationError):
            bad.validate()

    def test_round_trips_through_dict(self, small_config):
        faults = merge_scenarios(
            kill_servers([1, 2], 2.0, repair_after_hours=1.0),
            stuck_wax_sensors([3], 1.0, stuck_value_c=25.0),
            cooling_derate(0.8, 3.0, restore_after_hours=0.5),
            temperature_hazard(500.0),
        )
        config = _faulted(small_config, faults)
        rebuilt = SimulationConfig.from_dict(config.to_dict())
        assert rebuilt.faults == config.faults

    def test_kill_hot_group_fraction_never_kills_everything(
            self, small_config):
        scenario = kill_hot_group_fraction(small_config, 1.0, 1.0)
        assert len(scenario.server_faults) < small_config.num_servers
        assert len(scenario.server_faults) >= 1


# -- FaultState -------------------------------------------------------------


class TestFaultState:
    @pytest.fixture
    def state(self, small_config):
        return FaultState(small_config)

    def test_initially_all_active(self, state, small_config):
        assert state.num_active == small_config.num_servers
        assert state.availability == 1.0

    def test_fail_and_repair_cycle(self, state):
        state.fail_server(3, time_s=60.0)
        assert not state.active[3]
        assert state.availability < 1.0
        assert state.drain_newly_failed() == [3]
        assert state.drain_newly_failed() == []
        state.repair_server(3)
        assert state.active[3]
        assert state.failures == 1 and state.repairs == 1

    def test_double_fail_raises(self, state):
        state.fail_server(0, time_s=0.0)
        with pytest.raises(FaultInjectionError):
            state.fail_server(0, time_s=1.0)

    def test_repairing_live_server_is_noop(self, state):
        state.repair_server(0)
        assert state.repairs == 0

    def test_recovery_time_measured_from_failure(self, state):
        state.fail_server(1, time_s=100.0)
        state.note_recovered(160.0)
        assert state.recovery_times_s == [60.0]
        state.note_recovered(999.0)  # nothing pending: no-op
        assert state.recovery_times_s == [60.0]

    def test_cooling_factor_bounds(self, state):
        state.set_cooling_factor(0.5)
        assert state.inlet_offset_c == pytest.approx(
            0.5 * FaultConfig().derate_inlet_rise_c)
        with pytest.raises(FaultInjectionError):
            state.set_cooling_factor(1.2)

    def test_out_of_range_server_raises(self, state):
        with pytest.raises(FaultInjectionError):
            state.fail_server(999, time_s=0.0)


# -- scripted injection through a full run ----------------------------------


class TestScriptedInjection:
    def test_availability_series_tracks_outage(self, small_config):
        config = _faulted(small_config, kill_servers(
            [0, 1], 2.0, repair_after_hours=1.0))
        result = run_simulation(
            config, make_scheduler("round-robin", config),
            record_heatmaps=False)
        hours = result.times_s / 3600.0
        n = config.num_servers
        during = (hours > 2.01) & (hours < 2.99)
        after = hours > 3.01
        assert np.all(result.availability[during]
                      == pytest.approx((n - 2) / n))
        assert np.all(result.availability[after] == 1.0)
        assert result.min_availability == pytest.approx((n - 2) / n)

    def test_attach_twice_raises(self, small_config):
        config = _faulted(small_config, kill_servers([0], 1.0))
        sim = ClusterSimulation(config, make_scheduler("vmt-ta", config))
        injector = sim.fault_injector
        assert injector is not None
        injector.attach(sim.engine, sim.cluster)
        with pytest.raises(FaultInjectionError):
            injector.attach(sim.engine, sim.cluster)

    def test_dead_servers_draw_no_power(self, small_config):
        config = _faulted(small_config, kill_servers([0, 1, 2], 1.0))
        sim = ClusterSimulation(config,
                                make_scheduler("round-robin", config))
        result = sim.run()
        assert np.all(sim.cluster.power_w[:3] == 0.0)
        assert result.total_displaced_jobs >= 0

    def test_cooling_derate_raises_air_temperatures(self, small_config):
        derated = _faulted(small_config, cooling_derate(0.5, 1.0))
        hot = run_simulation(derated,
                             make_scheduler("round-robin", derated),
                             record_heatmaps=False)
        cool = run_simulation(small_config,
                              make_scheduler("round-robin",
                                             small_config),
                              record_heatmaps=False)
        late = hot.times_s / 3600.0 > 2.0
        assert (hot.mean_temp_c[late].mean()
                > cool.mean_temp_c[late].mean() + 1.0)
        assert hot.min_cooling_capacity_factor == pytest.approx(0.5)

    def test_cluster_rejects_allocation_on_failed_server(
            self, small_config):
        config = _faulted(small_config, kill_servers([0], 0.0))
        sim = ClusterSimulation(config, make_scheduler("vmt-ta", config))
        sim.fault_injector.state.fail_server(0, 0.0)
        allocation = np.zeros(
            (config.num_servers, len(WORKLOAD_LIST)), dtype=np.int64)
        allocation[0, 0] = 1
        with pytest.raises(SimulationError, match="failed server 0"):
            sim.cluster.step(allocation, 60.0)


class TestHazardFailures:
    def test_accelerated_hazard_produces_failures(self, small_config):
        config = _faulted(small_config,
                          temperature_hazard(5_000.0,
                                             repair_time_hours=1.0))
        sim = ClusterSimulation(config,
                                make_scheduler("round-robin", config))
        result = sim.run()
        state = sim.fault_injector.state
        assert state.failures > 0
        assert result.min_availability < 1.0
        # Auto-repair brought servers back during the run.
        assert state.repairs > 0

    def test_hazard_is_deterministic_given_seed(self, small_config):
        config = _faulted(small_config,
                          temperature_hazard(5_000.0,
                                             repair_time_hours=1.0))

        def failures():
            sim = ClusterSimulation(
                config, make_scheduler("round-robin", config))
            sim.run()
            return sim.fault_injector.state.failures

        assert failures() == failures()

    def test_zero_acceleration_never_fails(self, small_config):
        config = _faulted(small_config, temperature_hazard(0.0))
        sim = ClusterSimulation(config,
                                make_scheduler("round-robin", config))
        result = sim.run()
        assert sim.fault_injector.state.failures == 0
        assert result.min_availability == 1.0


# -- bit-identity of the fault-free path ------------------------------------


SERIES_FIELDS = ("cooling_load_w", "it_power_w", "mean_temp_c",
                 "mean_melt_fraction", "hot_group_mean_temp_c",
                 "max_cpu_temp_c")


class TestFaultFreePathUnchanged:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_enabled_but_empty_scenario_is_bit_identical(
            self, small_config, policy):
        """The plumbing must be inert: an enabled FaultConfig with no
        events produces exactly the series of a fault-free run."""
        armed = _faulted(small_config, FaultConfig(enabled=True))
        plain = run_simulation(
            small_config, make_scheduler(policy, small_config),
            record_heatmaps=False)
        wired = run_simulation(armed, make_scheduler(policy, armed),
                               record_heatmaps=False)
        for field in SERIES_FIELDS:
            np.testing.assert_array_equal(
                getattr(plain, field), getattr(wired, field),
                err_msg=f"{policy}: {field} changed")
        assert wired.min_availability == 1.0
        assert wired.total_displaced_jobs == 0

    def test_disabled_faults_attach_no_injector(self, small_config):
        sim = ClusterSimulation(small_config,
                                make_scheduler("vmt-ta", small_config))
        assert sim.fault_injector is None
        assert sim.cluster.fault_state is None


# -- end-to-end resilience ---------------------------------------------------


class TestEndToEndResilience:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_hot_group_outage_survived(self, small_config, policy):
        """Kill hot-group servers mid-trace: the run completes, the jobs
        re-place within one tick, and the metrics record the outage."""
        faults = kill_hot_group_fraction(small_config, 0.25, 2.0,
                                         repair_after_hours=2.0)
        killed = len(faults.server_faults)
        assert killed >= 1
        config = _faulted(small_config, faults)
        result = run_simulation(config, make_scheduler(policy, config),
                                record_heatmaps=False)
        n = config.num_servers
        assert result.min_availability == pytest.approx((n - killed) / n)
        # Every failure was credited a recovery, within one tick.
        assert len(result.recovery_times_s) == killed
        assert np.all(result.recovery_times_s
                      <= config.trace.step_seconds)
        # Full demand kept landing on survivors every tick.
        assert np.array_equal(result.jobs,
                              run_simulation(
                                  small_config,
                                  make_scheduler(policy, small_config),
                                  record_heatmaps=False).jobs)

    def test_spread_policies_displace_jobs(self, small_config):
        """Policies that load the low server ids see their jobs
        displaced by a head-of-fleet kill."""
        faults = kill_servers([0, 1], 2.0)
        config = _faulted(small_config, faults)
        for policy in ("round-robin", "vmt-ta", "vmt-wa"):
            result = run_simulation(config,
                                    make_scheduler(policy, config),
                                    record_heatmaps=False)
            assert result.total_displaced_jobs > 0, policy

    def test_capacity_error_only_on_genuine_exhaustion(self,
                                                       small_config):
        """Killing all but one server exceeds surviving capacity at the
        first post-outage tick -- and names the survivors."""
        n = small_config.num_servers
        config = _faulted(small_config,
                          kill_servers(range(n - 1), 1.0))
        with pytest.raises(CapacityError, match="surviving capacity"):
            run_simulation(config, make_scheduler("vmt-ta", config),
                           record_heatmaps=False)

    def test_small_outage_is_not_a_capacity_error(self, small_config):
        """The same demand on a mildly degraded fleet must NOT raise:
        spillover absorbs it."""
        config = _faulted(small_config, kill_servers([0], 1.0))
        run_simulation(config, make_scheduler("vmt-ta", config),
                       record_heatmaps=False)  # must not raise


# -- VMT-WA estimator divergence --------------------------------------------


def _divergence_config() -> SimulationConfig:
    return SimulationConfig(
        num_servers=30, seed=7,
        trace=TraceConfig(duration_hours=24.0),
        scheduler=SchedulerConfig(grouping_value=22.0),
    )


class TestDivergenceDegradation:
    def test_stuck_wax_sensor_triggers_ta_fallback(self):
        base = _divergence_config()
        config = _faulted(base, stuck_wax_sensors(
            [0, 1, 2, 3], 4.0, stuck_value_c=20.0))
        scheduler = make_scheduler("vmt-wa", config)
        result = run_simulation(config, scheduler,
                                record_heatmaps=False)
        assert scheduler.degraded
        # Degraded means TA sizing: the hot group never extends.
        assert (scheduler.hot_group_size
                == scheduler.base_sizer.hot_size)
        # Graceful: no CPU ever crosses the throttle point.
        throttle_c = CPUThermalModel().throttle_temp_c
        assert float(result.max_cpu_temp_c.max()) < throttle_c

    def test_healthy_run_never_degrades(self):
        base = _divergence_config()
        scheduler = make_scheduler("vmt-wa", base)
        run_simulation(base, scheduler, record_heatmaps=False)
        assert not scheduler.degraded

    def test_detection_can_be_disabled(self):
        base = _divergence_config()
        config = _faulted(base, stuck_wax_sensors(
            [0, 1, 2, 3], 4.0, stuck_value_c=20.0))
        scheduler = make_scheduler("vmt-wa", config,
                                   detect_divergence=False)
        run_simulation(config, scheduler, record_heatmaps=False)
        assert not scheduler.degraded

    def test_reset_rearms_detection(self):
        base = _divergence_config()
        config = _faulted(base, stuck_wax_sensors(
            [0, 1, 2, 3], 4.0, stuck_value_c=20.0))
        scheduler = make_scheduler("vmt-wa", config)
        run_simulation(config, scheduler, record_heatmaps=False)
        assert scheduler.degraded
        scheduler.reset()
        assert not scheduler.degraded


# -- observer hardening (simulation loop) -----------------------------------


class TestObserverHardening:
    def test_raising_observer_surfaces_as_simulation_error(
            self, small_config):
        sim = ClusterSimulation(small_config,
                                make_scheduler("round-robin",
                                               small_config))

        def bad_observer(time_s, demand, placement, cluster):
            raise ValueError("boom")

        sim.add_observer(bad_observer)
        with pytest.raises(SimulationError, match="bad_observer"):
            sim.run()

    def test_observer_errors_chain_the_cause(self, small_config):
        sim = ClusterSimulation(small_config,
                                make_scheduler("round-robin",
                                               small_config))

        def fragile(time_s, demand, placement, cluster):
            raise KeyError("missing")

        sim.add_observer(fragile)
        with pytest.raises(SimulationError) as excinfo:
            sim.run()
        assert isinstance(excinfo.value.__cause__, KeyError)

"""Tests for the streaming/live subsystem (``repro.live``).

The load-bearing contract is the oracle differential: a live run driven
by the perfect forecaster over a trace-replay feed must be bit-identical
to the offline batch run for every policy -- any gap under a real
forecaster is then a measured property of the forecaster, not a harness
artifact.  Around that: no-lookahead enforcement, feed framing, live
determinism, MPC shadow racing, mid-stream checkpoint/resume as state
migration, and the cooperative (thread-safe) run timeout.
"""

import glob

import numpy as np
import pytest

from repro import api
from repro.cluster.simulation import run_simulation
from repro.config import SimulationConfig, TraceConfig
from repro.core.policies import SCHEDULER_NAMES, make_scheduler
from repro.errors import SimulationError, TraceError
from repro.live import (JsonlFeed, LiveRunner, LiveTraceBuffer,
                        MPCController, SyntheticArrivalFeed,
                        TraceReplayFeed, invert_grouping_value,
                        make_feed, make_forecaster, resume_live)
from repro.perf.runner import ExperimentRunner, RunFailure, RunSpec
from repro.state.checkpoint import verify_roundtrip
from repro.workloads.workload import WORKLOAD_LIST

NUM_WORKLOADS = len(WORKLOAD_LIST)


def tiny_config(hours=2.0, servers=6, seed=11):
    return SimulationConfig(
        num_servers=servers, seed=seed,
        trace=TraceConfig(duration_hours=hours))


class TestLiveTraceBuffer:
    def test_lookahead_is_structurally_impossible(self):
        buffer = LiveTraceBuffer(10, 60.0, 192)
        buffer.append(np.ones(NUM_WORKLOADS, dtype=np.int64))
        assert buffer.filled == 1
        buffer.demand_at(0)  # arrived: fine
        with pytest.raises(TraceError, match="no lookahead"):
            buffer.demand_at(1)
        with pytest.raises(TraceError, match="no lookahead"):
            buffer.demand_at(9)

    def test_append_validates_shape_sign_and_capacity(self):
        buffer = LiveTraceBuffer(4, 60.0, 10)
        with pytest.raises(TraceError):
            buffer.append(np.zeros(NUM_WORKLOADS + 1, dtype=np.int64))
        with pytest.raises(TraceError):
            buffer.append(np.array([-1, 0, 0, 0, 0]))
        with pytest.raises(TraceError, match="exceeds cluster capacity"):
            buffer.append(np.array([11, 0, 0, 0, 0]))
        for _ in range(4):
            buffer.append(np.zeros(NUM_WORKLOADS, dtype=np.int64))
        with pytest.raises(TraceError, match="full"):
            buffer.append(np.zeros(NUM_WORKLOADS, dtype=np.int64))

    def test_fingerprint_covers_only_the_ingested_prefix(self):
        a = LiveTraceBuffer(8, 60.0, 100)
        b = LiveTraceBuffer(8, 60.0, 100)
        row = np.array([3, 1, 0, 2, 0])
        a.append(row)
        assert a.fingerprint() != b.fingerprint()
        b.append(row)
        assert a.fingerprint() == b.fingerprint()

    def test_state_roundtrip_restores_prefix(self):
        a = LiveTraceBuffer(6, 60.0, 50)
        for k in range(3):
            a.append(np.array([k, 0, 1, 0, 0]))
        b = LiveTraceBuffer(6, 60.0, 50)
        b.load_state_dict(a.state_dict())
        assert b.filled == 3
        assert b.fingerprint() == a.fingerprint()
        mismatched = LiveTraceBuffer(7, 60.0, 50)
        with pytest.raises(TraceError, match="framing"):
            mismatched.load_state_dict(a.state_dict())

    def test_with_forecast_clips_over_capacity_rows(self):
        buffer = LiveTraceBuffer(6, 60.0, 10)
        buffer.append(np.array([1, 1, 0, 0, 0]))
        wild = np.array([[100, 100, 0, 0, 0]])
        trace = buffer.with_forecast(wild)
        assert trace.num_steps == 2
        assert trace.counts[1].sum() <= 10
        np.testing.assert_array_equal(trace.counts[0],
                                      [1, 1, 0, 0, 0])


class TestFeeds:
    def test_replay_feed_matches_batch_trace(self):
        config = tiny_config()
        feed = TraceReplayFeed.from_config(config)
        rows = list(feed.iter_rows())
        assert len(rows) == config.trace.num_steps
        assert rows[0][0] == 0
        np.testing.assert_array_equal(rows[5][1],
                                      feed.trace.counts[5])

    def test_synthetic_feed_is_seeded_and_capacity_bounded(self):
        a = SyntheticArrivalFeed(120, 60.0, 192, seed=3)
        b = SyntheticArrivalFeed(120, 60.0, 192, seed=3)
        c = SyntheticArrivalFeed(120, 60.0, 192, seed=4)
        rows_a = np.array([r for _, r in a.iter_rows()])
        rows_b = np.array([r for _, r in b.iter_rows()])
        rows_c = np.array([r for _, r in c.iter_rows()])
        np.testing.assert_array_equal(rows_a, rows_b)
        assert not np.array_equal(rows_a, rows_c)
        assert rows_a.sum(axis=1).max() <= 192

    def test_jsonl_feed_header_and_rows(self):
        lines = ['{"num_steps": 3, "step_seconds": 60.0, '
                 '"total_cores": 50}',
                 '{"jobs": [1, 2, 3, 4, 5]}',
                 '',
                 '[5, 4, 3, 2, 1]']
        feed = JsonlFeed(lines)
        assert feed.num_steps == 3
        rows = list(feed.iter_rows())
        assert len(rows) == 2  # stream ended early: run just ends
        np.testing.assert_array_equal(rows[0][1], [1, 2, 3, 4, 5])
        np.testing.assert_array_equal(rows[1][1], [5, 4, 3, 2, 1])
        with pytest.raises(TraceError, match="rewind"):
            list(feed.iter_rows(start=1))

    def test_jsonl_feed_requires_framing(self):
        with pytest.raises(TraceError, match="num_steps"):
            JsonlFeed(['{"jobs": [1, 2, 3, 4, 5]}'])

    def test_make_feed_kinds(self):
        config = tiny_config()
        assert isinstance(make_feed("replay", config), TraceReplayFeed)
        synthetic = make_feed("synthetic", config)
        assert synthetic.num_steps == config.trace.num_steps
        with pytest.raises(TraceError, match="unknown feed"):
            make_feed("psychic", config)


class TestForecasters:
    def test_invert_grouping_value_roundtrips_eq1(self):
        from repro.core.grouping import hot_group_size
        config = tiny_config()
        pmt = config.wax.melt_temp_c
        for servers in range(1, config.num_servers):
            gv = servers * pmt / config.num_servers
            assert hot_group_size(gv, pmt, config.num_servers) == servers
        gv = invert_grouping_value(3 * config.server.cores, config)
        assert hot_group_size(gv, pmt, config.num_servers) == 3

    def test_last_value_falls_back_to_configured_gv(self):
        config = tiny_config()
        forecaster = make_forecaster("last-value", config)
        assert forecaster.grouping_value(0) == \
            config.scheduler.grouping_value
        forecaster.observe(0, np.array([50, 50, 0, 0, 0]))
        assert forecaster.grouping_value(1) != \
            config.scheduler.grouping_value

    def test_oracle_forecast_requires_trace(self):
        config = tiny_config()
        oracle = make_forecaster("oracle", config)
        with pytest.raises(SimulationError, match="trace"):
            oracle.forecast(0, 5)


class TestOracleDifferential:
    """THE honesty proof: live + oracle == offline batch, bit for bit."""

    @pytest.mark.parametrize("policy", sorted(SCHEDULER_NAMES))
    def test_live_oracle_is_bit_identical_to_batch(self, policy):
        config = tiny_config()
        batch = run_simulation(config, make_scheduler(policy, config))
        feed = TraceReplayFeed.from_config(config)
        live = LiveRunner(config, policy, feed,
                          forecaster="oracle").run()
        assert live.result.fingerprint() == batch.fingerprint()
        assert live.steps_ingested == config.trace.num_steps

    def test_live_runs_are_deterministic(self):
        config = tiny_config()
        fingerprints = set()
        for _ in range(2):
            feed = SyntheticArrivalFeed(
                60, 60.0, config.total_cores, seed=9)
            report = LiveRunner(config, "vmt-wa", feed,
                                forecaster="last-value",
                                decision_every=10).run()
            fingerprints.add(report.result.fingerprint())
        assert len(fingerprints) == 1

    def test_naive_forecaster_measurably_degrades_peak_cooling(self):
        # Over a full diurnal cycle the persistence forecaster lags the
        # ramp: it under-sizes the hot group into the peak.  The paper's
        # oracle assumption is worth real watts.
        config = tiny_config(hours=24.0, servers=8, seed=7)
        batch = run_simulation(config, make_scheduler("vmt-ta", config))
        feed = TraceReplayFeed.from_config(config)
        naive = LiveRunner(config, "vmt-ta", feed,
                           forecaster="last-value",
                           decision_every=15).run()
        assert naive.result.fingerprint() != batch.fingerprint()
        assert naive.result.peak_cooling_load_w > \
            1.05 * batch.peak_cooling_load_w


class TestLiveRunnerGuards:
    def test_feed_framing_must_match_config(self):
        config = tiny_config()
        bad_cores = SyntheticArrivalFeed(10, 60.0,
                                         config.total_cores + 1)
        with pytest.raises(SimulationError, match="cores"):
            LiveRunner(config, "vmt-ta", bad_cores)
        bad_step = SyntheticArrivalFeed(10, 30.0, config.total_cores)
        with pytest.raises(SimulationError, match="step_seconds"):
            LiveRunner(config, "vmt-ta", bad_step)

    def test_live_refuses_fault_injection(self):
        import dataclasses
        from repro.cluster.simulation import ClusterSimulation
        from repro.faults import FaultInjector, kill_servers
        config = dataclasses.replace(tiny_config(),
                                     faults=kill_servers([0], 0.5))
        buffer = LiveTraceBuffer(10, 60.0, config.total_cores)
        sim = ClusterSimulation(config,
                                make_scheduler("vmt-ta", config),
                                trace=buffer,
                                fault_injector=FaultInjector(config))
        with pytest.raises(SimulationError, match="fault"):
            sim.begin_streaming()


class TestMPC:
    def test_mpc_decisions_are_recorded_and_clipped(self):
        config = tiny_config(hours=4.0)
        feed = TraceReplayFeed.from_config(config)
        mpc = MPCController(config, horizon_steps=20, max_workers=1)
        report = LiveRunner(config, "vmt-ta", feed,
                            forecaster="last-value",
                            decision_every=60, mpc=mpc).run()
        assert report.mpc_decisions
        pmt = config.wax.melt_temp_c
        n = config.num_servers
        for decision in report.mpc_decisions:
            assert len(decision["candidates"]) == \
                len(decision["predicted_peak_w"])
            assert decision["chosen_gv"] in decision["candidates"]
            for gv in decision["candidates"]:
                assert pmt / n <= gv <= pmt * (n - 1) / n
            best = int(np.argmin(decision["predicted_peak_w"]))
            assert decision["chosen_gv"] == \
                decision["candidates"][best]

    def test_mpc_threaded_race_matches_sequential(self):
        config = tiny_config(hours=3.0)
        reports = []
        for workers in (1, 4):
            feed = TraceReplayFeed.from_config(config)
            mpc = MPCController(config, horizon_steps=15,
                                max_workers=workers)
            reports.append(
                LiveRunner(config, "vmt-wa", feed,
                           forecaster="last-value", decision_every=45,
                           mpc=mpc).run())
        assert reports[0].result.fingerprint() == \
            reports[1].result.fingerprint()
        assert reports[0].mpc_decisions == reports[1].mpc_decisions


class TestLiveMigration:
    """Checkpoint/resume treated as live state migration."""

    def test_mid_stream_checkpoint_resumes_bit_identically(self, tmp_path):
        config = tiny_config(hours=3.0, servers=8, seed=7)
        feed = TraceReplayFeed.from_config(config)
        straight = LiveRunner(config, "vmt-wa", feed,
                              forecaster="last-value",
                              decision_every=10).run()

        feed2 = TraceReplayFeed.from_config(config)
        LiveRunner(config, "vmt-wa", feed2, forecaster="last-value",
                   decision_every=10, checkpoint_every=60,
                   checkpoint_dir=str(tmp_path)).run()
        checkpoints = sorted(glob.glob(str(tmp_path / "*.npz")))
        assert len(checkpoints) >= 2
        mid = checkpoints[len(checkpoints) // 2]

        feed3 = TraceReplayFeed.from_config(config)
        runner = resume_live(mid, feed3, forecaster="last-value",
                             decision_every=10)
        assert runner.buffer.filled > 0  # prefix came from the snapshot
        resumed = runner.run()
        assert resumed.steps_ingested < straight.steps_ingested
        verify_roundtrip(straight.result, resumed.result)

    def test_resume_live_rejects_batch_snapshots(self, tmp_path):
        config = tiny_config()
        run_simulation(config, make_scheduler("vmt-ta", config),
                       checkpoint_every=60,
                       checkpoint_dir=str(tmp_path))
        batch_ckpt = sorted(glob.glob(str(tmp_path / "*.npz")))[0]
        feed = TraceReplayFeed.from_config(config)
        with pytest.raises(SimulationError, match="no live state"):
            resume_live(batch_ckpt, feed)

    def test_api_live_run_resume_from(self, tmp_path):
        config = tiny_config(hours=2.0)
        straight = api.live_run(policy="vmt-ta", config=config,
                                forecaster="oracle")
        api.live_run(policy="vmt-ta", config=config,
                     forecaster="oracle", checkpoint_every=40,
                     checkpoint_dir=str(tmp_path))
        mid = sorted(glob.glob(str(tmp_path / "*.npz")))[0]
        resumed = api.live_run(resume_from=mid, forecaster="oracle")
        verify_roundtrip(straight.result, resumed.result)


class TestThreadedTimeout:
    def test_timeout_fires_on_worker_threads(self):
        # The whole point of replacing SIGALRM: a budget that actually
        # aborts runs executing off the main thread.
        config = tiny_config(hours=240.0, servers=20)
        runner = ExperimentRunner(max_workers=2, workers_mode="thread")
        outcomes = runner.run(
            [RunSpec(config=config, policy="vmt-ta", label="hung-a",
                     timeout_s=0.05),
             RunSpec(config=config, policy="vmt-wa", label="hung-b",
                     timeout_s=0.05)],
            raise_on_error=False)
        for outcome in outcomes:
            assert isinstance(outcome, RunFailure)
            assert outcome.error_type == "RunTimeout"

    def test_live_run_honors_timeout(self):
        config = tiny_config(hours=240.0, servers=20)
        from repro.perf.runner import RunTimeout
        with pytest.raises(RunTimeout):
            api.live_run(policy="vmt-ta", config=config,
                         forecaster="oracle", timeout_s=0.05)

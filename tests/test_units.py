"""Unit tests for unit helpers."""

import pytest

from repro import units


def test_minutes_hours_days():
    assert units.minutes(2) == 120.0
    assert units.hours(1.5) == 5400.0
    assert units.days(2) == 172800.0


def test_to_hours_inverts_hours():
    assert units.to_hours(units.hours(7.25)) == pytest.approx(7.25)


def test_kilojoules():
    assert units.kilojoules(3.5) == 3500.0


def test_power_conversions():
    assert units.to_kilowatts(2500.0) == pytest.approx(2.5)
    assert units.to_megawatts(25e6) == pytest.approx(25.0)


def test_liters_to_cubic_meters():
    assert units.liters_to_cubic_meters(4.0) == pytest.approx(0.004)


def test_celsius_to_kelvin():
    assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)
    assert units.celsius_to_kelvin(35.7) == pytest.approx(308.85)


def test_hours_per_month_is_annual_twelfth():
    assert units.HOURS_PER_MONTH * 12 == pytest.approx(365.25 * 24)

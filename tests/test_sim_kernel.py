"""Unit tests for the event-driven simulation kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import Engine, Event, EventQueue, PeriodicProcess, RngStreams


class TestEventQueue:
    def test_pop_returns_events_in_time_order(self):
        queue = EventQueue()
        fired = []
        for time in (5.0, 1.0, 3.0):
            queue.push(Event(time=time, callback=fired.append))
        times = [queue.pop().time for __ in range(3)]
        assert times == [1.0, 3.0, 5.0]

    def test_ties_break_by_priority_then_insertion(self):
        queue = EventQueue()
        order = []
        queue.push(Event(time=1.0, callback=lambda e: order.append("b"),
                         priority=1))
        queue.push(Event(time=1.0, callback=lambda e: order.append("a"),
                         priority=0))
        queue.push(Event(time=1.0, callback=lambda e: order.append("c"),
                         priority=1))
        while len(queue):
            queue.pop().fire()
        assert order == ["a", "b", "c"]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        keep = Event(time=2.0, callback=lambda e: None, name="keep")
        drop = queue.push(Event(time=1.0, callback=lambda e: None))
        queue.push(keep)
        drop.cancel()
        assert queue.pop() is keep

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(Event(time=1.0, callback=lambda e: None))
        queue.push(Event(time=2.0, callback=lambda e: None))
        first.cancel()
        assert queue.peek_time() == 2.0

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(Event(time=-1.0, callback=lambda e: None))

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                    max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_property_pop_order_is_sorted(self, times):
        queue = EventQueue()
        for t in times:
            queue.push(Event(time=t, callback=lambda e: None))
        popped = [queue.pop().time for __ in range(len(times))]
        assert popped == sorted(popped)


class TestEngine:
    def test_run_until_dispatches_in_order_and_advances_clock(self):
        engine = Engine()
        seen = []
        engine.schedule_at(10.0, lambda e: seen.append(engine.now))
        engine.schedule_at(5.0, lambda e: seen.append(engine.now))
        engine.run_until(20.0)
        assert seen == [5.0, 10.0]
        assert engine.now == 20.0

    def test_run_until_leaves_future_events_queued(self):
        engine = Engine()
        seen = []
        engine.schedule_at(5.0, lambda e: seen.append("early"))
        engine.schedule_at(50.0, lambda e: seen.append("late"))
        engine.run_until(10.0)
        assert seen == ["early"]
        engine.run_until(60.0)
        assert seen == ["early", "late"]

    def test_schedule_in_past_raises(self):
        engine = Engine()
        engine.run_until(100.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(50.0, lambda e: None)

    def test_schedule_after_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Engine().schedule_after(-1.0, lambda e: None)

    def test_events_can_schedule_events(self):
        engine = Engine()
        seen = []

        def chain(event):
            seen.append(engine.now)
            if engine.now < 3.0:
                engine.schedule_after(1.0, chain)

        engine.schedule_at(1.0, chain)
        engine.run()
        assert seen == [1.0, 2.0, 3.0]

    def test_stop_halts_dispatch(self):
        engine = Engine()
        seen = []
        engine.schedule_at(1.0, lambda e: (seen.append(1), engine.stop()))
        engine.schedule_at(2.0, lambda e: seen.append(2))
        engine.run()
        assert seen == [1]

    def test_reset_rewinds_clock_and_clears_queue(self):
        engine = Engine()
        engine.schedule_at(5.0, lambda e: None)
        engine.run_until(3.0)
        engine.reset()
        assert engine.now == 0.0
        assert engine.pending_events == 0

    def test_events_dispatched_counter(self):
        engine = Engine()
        for t in range(5):
            engine.schedule_at(float(t), lambda e: None)
        engine.run()
        assert engine.events_dispatched == 5

    def test_stop_during_run_until_keeps_clock_at_last_event(self):
        """Regression: stop() mid-run must not jump the clock to end_time.

        The clock jumping past undispatched events made them impossible
        to re-schedule (schedule-in-the-past) after an early stop.
        """
        engine = Engine()
        engine.schedule_at(1.0, lambda e: engine.stop())
        engine.schedule_at(2.0, lambda e: None)
        engine.run_until(100.0)
        assert engine.now == 1.0
        assert engine.pending_events == 1
        engine.run_until(100.0)  # resumes cleanly past the stop
        assert engine.now == 100.0
        assert engine.pending_events == 0

    def test_pending_events_excludes_cancelled(self):
        """Regression: the gauge counted tombstones as pending work."""
        engine = Engine()
        keep = engine.schedule_at(1.0, lambda e: None)
        drop = engine.schedule_at(2.0, lambda e: None)
        assert engine.pending_events == 2
        drop.cancel()
        assert engine.pending_events == 1
        keep.cancel()
        assert engine.pending_events == 0

    def test_state_dict_roundtrip(self):
        engine = Engine()
        engine.schedule_at(5.0, lambda e: None)
        engine.run_until(10.0)
        state = engine.state_dict()
        fresh = Engine()
        fresh.load_state_dict(state)
        assert fresh.now == 10.0
        assert fresh.events_dispatched == 1

    def test_load_state_refuses_non_empty_queue(self):
        engine = Engine()
        engine.run_until(10.0)
        state = engine.state_dict()
        busy = Engine()
        busy.schedule_at(1.0, lambda e: None)
        with pytest.raises(SimulationError):
            busy.load_state_dict(state)


class TestPeriodicProcess:
    def test_fires_at_fixed_period(self):
        engine = Engine()
        ticks = []
        PeriodicProcess(engine, 60.0, ticks.append)
        engine.run_until(300.0)
        assert ticks == [0.0, 60.0, 120.0, 180.0, 240.0, 300.0]

    def test_stop_cancels_future_ticks(self):
        engine = Engine()
        ticks = []
        process = PeriodicProcess(engine, 10.0, ticks.append)
        engine.run_until(25.0)
        process.stop()
        engine.run_until(100.0)
        assert ticks == [0.0, 10.0, 20.0]
        assert process.ticks == 3

    def test_stop_from_inside_callback(self):
        engine = Engine()
        ticks = []

        def tick(now):
            ticks.append(now)
            if len(ticks) == 2:
                process.stop()

        process = PeriodicProcess(engine, 5.0, tick)
        engine.run_until(100.0)
        assert ticks == [0.0, 5.0]

    def test_start_at_offsets_first_tick(self):
        engine = Engine()
        ticks = []
        PeriodicProcess(engine, 10.0, ticks.append, start_at=7.0)
        engine.run_until(30.0)
        assert ticks == [7.0, 17.0, 27.0]

    def test_zero_period_rejected(self):
        with pytest.raises(SimulationError):
            PeriodicProcess(Engine(), 0.0, lambda now: None)


class TestRngStreams:
    def test_same_seed_and_name_reproduce(self):
        a = RngStreams(7).stream("trace").normal(size=10)
        b = RngStreams(7).stream("trace").normal(size=10)
        assert np.array_equal(a, b)

    def test_different_names_are_independent(self):
        streams = RngStreams(7)
        a = streams.stream("alpha").normal(size=100)
        b = streams.stream("beta").normal(size=100)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x").normal(size=10)
        b = RngStreams(2).stream("x").normal(size=10)
        assert not np.array_equal(a, b)

    def test_stream_is_cached(self):
        streams = RngStreams(7)
        assert streams.stream("x") is streams.stream("x")

    def test_reset_recreates_streams(self):
        streams = RngStreams(7)
        first = streams.stream("x").normal(size=5)
        streams.reset()
        again = streams.stream("x").normal(size=5)
        assert np.array_equal(first, again)

    def test_adding_a_stream_does_not_perturb_others(self):
        solo = RngStreams(7)
        solo_draw = solo.stream("main").normal(size=20)
        paired = RngStreams(7)
        paired.stream("extra").normal(size=3)  # extra subsystem appears
        paired_draw = paired.stream("main").normal(size=20)
        assert np.array_equal(solo_draw, paired_draw)

    def test_crc32_colliding_names_get_distinct_streams(self):
        """Regression: the spawn key used to be crc32(name), which
        aliases distinct names onto one stream.  "plumless" and
        "buckeroo" are the classic crc32 collision pair; the injective
        key must keep them independent."""
        import zlib
        assert zlib.crc32(b"plumless") == zlib.crc32(b"buckeroo")
        streams = RngStreams(7)
        a = streams.stream("plumless").normal(size=100)
        b = streams.stream("buckeroo").normal(size=100)
        assert not np.array_equal(a, b)

    def test_state_dict_roundtrip_continues_sequences(self):
        streams = RngStreams(7)
        streams.stream("x").normal(size=13)
        streams.stream("y").normal(size=5)
        state = streams.state_dict()
        expected_x = streams.stream("x").normal(size=10)
        expected_y = streams.stream("y").normal(size=10)
        restored = RngStreams(7)
        restored.load_state_dict(state)
        assert np.array_equal(restored.stream("x").normal(size=10),
                              expected_x)
        assert np.array_equal(restored.stream("y").normal(size=10),
                              expected_y)

    def test_load_state_rejects_foreign_bit_generator(self):
        streams = RngStreams(7)
        streams.stream("x")
        state = streams.state_dict()
        state["x"] = dict(state["x"], bit_generator="MT19937")
        with pytest.raises(SimulationError, match="bit generator"):
            RngStreams(7).load_state_dict(state)

"""Tests for the stable ``repro.api`` facade and the unified signatures.

The facade's contract (frozen at ``API_VERSION = "1.0"``): keyword-only
entry points everywhere -- the pre-facade positional shims are gone --
config overrides accepted inline (mutually exclusive with ``config=``),
results identical to hand-wiring the building blocks, and lossless
``to_json``/``from_json`` round trips on every result dataclass.
"""

import json

import numpy as np
import pytest

from repro import api
from repro.analysis.experiments import tco_analysis
from repro.analysis.sweep import gv_sweep
from repro.cluster.simulation import Observer, run_simulation
from repro.config import TraceConfig, paper_cluster_config
from repro.core.policies import make_scheduler
from repro.core.scheduler import Placement
from repro.errors import ConfigurationError
from repro.perf import clear_shared_cache


def tiny_config(seed=11, **overrides):
    config = paper_cluster_config(num_servers=6, grouping_value=22.0,
                                  seed=seed, **overrides)
    return config.replace(trace=TraceConfig(duration_hours=2.0))


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_shared_cache()
    yield
    clear_shared_cache()


class TestRun:
    def test_matches_hand_wired_building_blocks(self):
        config = tiny_config()
        facade = api.run(policy="vmt-ta", config=config)
        manual = run_simulation(config, make_scheduler("vmt-ta", config))
        assert facade.fingerprint() == manual.fingerprint()

    def test_shortcut_keywords_build_the_paper_config(self):
        # The shortcut path uses the full two-day trace; compare the
        # built configs instead of running 2880 ticks here.
        from repro.api import _build_config
        built = _build_config(None, num_servers=6, gv=22.0, seed=11,
                              inlet_stdev_c=None, wax_threshold=None)
        reference = paper_cluster_config(num_servers=6,
                                         grouping_value=22.0, seed=11)
        assert built.to_dict() == reference.to_dict()

    def test_config_and_shortcuts_conflict(self):
        with pytest.raises(ConfigurationError, match="not both"):
            api.run(policy="vmt-ta", config=tiny_config(), num_servers=4)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown policy"):
            api.run(policy="hottest-first", config=tiny_config())

    def test_positional_arguments_refused(self):
        with pytest.raises(TypeError):
            api.run("vmt-ta")


class TestCompare:
    def test_reduction_arithmetic_and_ordering(self):
        duel = api.compare(policies=("vmt-ta", "round-robin"),
                           config=tiny_config())
        assert duel.policies == ("vmt-ta", "round-robin")
        baseline = duel["round-robin"]
        expected = duel["vmt-ta"].peak_reduction_vs(baseline)
        assert duel.peak_reduction("vmt-ta") == pytest.approx(expected)

    def test_duplicates_deduped(self):
        duel = api.compare(policies=("vmt-ta", "vmt-ta", "round-robin"),
                           config=tiny_config())
        assert duel.policies == ("vmt-ta", "round-robin")

    def test_missing_policy_in_reduction(self):
        duel = api.compare(policies=("vmt-ta", "round-robin"),
                           config=tiny_config())
        with pytest.raises(ConfigurationError):
            duel.peak_reduction("vmt-wa")

    def test_empty_policies_rejected(self):
        with pytest.raises(ConfigurationError):
            api.compare(policies=(), config=tiny_config())


class TestSweepAndDatacenter:
    def test_sweep_delegates_to_gv_sweep(self):
        facade = api.sweep(grouping_values=(20.0, 24.0),
                           policies=("vmt-ta",), num_servers=6, seed=11)
        clear_shared_cache()
        direct = gv_sweep((20.0, 24.0), policies=("vmt-ta",),
                          num_servers=6, seed=11)
        np.testing.assert_array_equal(facade.values, direct.values)
        np.testing.assert_array_equal(facade.reductions["vmt-ta"],
                                      direct.reductions["vmt-ta"])

    def test_datacenter_needs_clusters(self):
        with pytest.raises(ConfigurationError):
            api.datacenter(num_clusters=0, config=tiny_config())


class TestFrozenV1Signatures:
    """The v1 freeze removed the positional shims: keyword-only now."""

    def test_gv_sweep_rejects_positional_policies(self):
        with pytest.raises(TypeError):
            gv_sweep((20.0,), ("vmt-ta",))

    def test_tco_analysis_rejects_positional_reduction(self):
        with pytest.raises(TypeError):
            tco_analysis(0.128)

    def test_api_version_exported(self):
        import repro
        assert api.API_VERSION == "1.0"
        assert repro.API_VERSION is api.API_VERSION
        assert "API_VERSION" in api.__all__

    def test_top_level_all_importable_and_complete(self):
        import repro
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name
        # The documented facade surface is part of __all__.
        for name in ("api", "API_VERSION", "Comparison", "SweepResult",
                     "SuiteReport", "LeaderboardEntry"):
            assert name in repro.__all__

    def test_no_deprecation_shims_left_in_src(self):
        import pathlib
        import repro
        src = pathlib.Path(repro.__file__).parent
        offenders = [path for path in src.rglob("*.py")
                     if "DeprecationWarning" in path.read_text()]
        assert offenders == []


class TestResultJsonRoundTrips:
    """to_json/from_json are the frozen HTTP response schemas."""

    def test_simulation_result_round_trip_is_bit_identical(self):
        result = api.run(policy="vmt-ta", config=tiny_config())
        payload = json.loads(json.dumps(result.to_json()))
        from repro.cluster.metrics import SimulationResult
        rebuilt = SimulationResult.from_json(payload)
        assert rebuilt.fingerprint() == result.fingerprint()
        assert rebuilt.config.to_dict() == result.config.to_dict()

    def test_comparison_round_trip(self):
        duel = api.compare(policies=("vmt-ta", "round-robin"),
                           config=tiny_config())
        payload = json.loads(json.dumps(duel.to_json()))
        rebuilt = api.Comparison.from_json(payload)
        assert rebuilt.policies == duel.policies
        for policy in duel.policies:
            assert rebuilt[policy].fingerprint() == \
                duel[policy].fingerprint()
        assert rebuilt.peak_reduction("vmt-ta") == \
            pytest.approx(duel.peak_reduction("vmt-ta"))

    def test_sweep_result_round_trip(self):
        from repro.analysis.sweep import SweepResult
        sweep = api.sweep(grouping_values=(20.0, 24.0),
                          policies=("vmt-ta",), num_servers=6, seed=11)
        payload = json.loads(json.dumps(sweep.to_json()))
        rebuilt = SweepResult.from_json(payload)
        assert rebuilt.parameter_name == sweep.parameter_name
        np.testing.assert_array_equal(rebuilt.values, sweep.values)
        np.testing.assert_array_equal(rebuilt.reductions["vmt-ta"],
                                      sweep.reductions["vmt-ta"])

    def test_suite_report_round_trip_and_leaderboard(self):
        from repro.scenarios import SuiteReport
        report = api.stress(scenarios=("heat-wave",),
                            policies=("vmt-ta", "round-robin"),
                            num_servers=8, duration_hours=6.0, seed=11)
        payload = json.loads(json.dumps(report.to_json()))
        rebuilt = SuiteReport.from_json(payload)
        assert len(rebuilt.records) == len(report.records)
        assert rebuilt.rankings == report.rankings
        board = report.leaderboard()
        assert [row.policy for row in board] == \
            [row["policy"] for row in payload["leaderboard"]]
        assert [row.rank for row in board] == \
            list(range(1, len(board) + 1))
        for row in board:
            assert np.isfinite(row.mean_peak_cooling_kw)
            assert np.isfinite(row.min_availability)

    def test_result_from_json_rejects_wrong_schema(self):
        from repro.cluster.metrics import SimulationResult
        from repro.errors import SimulationError
        with pytest.raises(SimulationError, match="repro.result/1"):
            SimulationResult.from_json({"schema": "bogus/9"})


class TestObserverAlias:
    def test_exported_and_typed_with_placement(self):
        import typing
        from repro import Observer as top_level
        assert top_level is Observer
        args = typing.get_args(Observer)[0]
        assert Placement in args

"""Tests for the stable ``repro.api`` facade and the unified signatures.

The facade's contract: keyword-only entry points, config overrides
accepted inline (mutually exclusive with ``config=``), results identical
to hand-wiring the building blocks, and ``DeprecationWarning`` shims
keeping the pre-facade positional forms alive for one cycle.
"""

import warnings

import numpy as np
import pytest

from repro import api
from repro.analysis.experiments import tco_analysis
from repro.analysis.sweep import gv_sweep
from repro.cluster.simulation import Observer, run_simulation
from repro.config import TraceConfig, paper_cluster_config
from repro.core.policies import make_scheduler
from repro.core.scheduler import Placement
from repro.errors import ConfigurationError
from repro.perf import clear_shared_cache


def tiny_config(seed=11, **overrides):
    config = paper_cluster_config(num_servers=6, grouping_value=22.0,
                                  seed=seed, **overrides)
    return config.replace(trace=TraceConfig(duration_hours=2.0))


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_shared_cache()
    yield
    clear_shared_cache()


class TestRun:
    def test_matches_hand_wired_building_blocks(self):
        config = tiny_config()
        facade = api.run(policy="vmt-ta", config=config)
        manual = run_simulation(config, make_scheduler("vmt-ta", config))
        assert facade.fingerprint() == manual.fingerprint()

    def test_shortcut_keywords_build_the_paper_config(self):
        # The shortcut path uses the full two-day trace; compare the
        # built configs instead of running 2880 ticks here.
        from repro.api import _build_config
        built = _build_config(None, num_servers=6, gv=22.0, seed=11,
                              inlet_stdev_c=None, wax_threshold=None)
        reference = paper_cluster_config(num_servers=6,
                                         grouping_value=22.0, seed=11)
        assert built.to_dict() == reference.to_dict()

    def test_config_and_shortcuts_conflict(self):
        with pytest.raises(ConfigurationError, match="not both"):
            api.run(policy="vmt-ta", config=tiny_config(), num_servers=4)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown policy"):
            api.run(policy="hottest-first", config=tiny_config())

    def test_positional_arguments_refused(self):
        with pytest.raises(TypeError):
            api.run("vmt-ta")


class TestCompare:
    def test_reduction_arithmetic_and_ordering(self):
        duel = api.compare(policies=("vmt-ta", "round-robin"),
                           config=tiny_config())
        assert duel.policies == ("vmt-ta", "round-robin")
        baseline = duel["round-robin"]
        expected = duel["vmt-ta"].peak_reduction_vs(baseline)
        assert duel.peak_reduction("vmt-ta") == pytest.approx(expected)

    def test_duplicates_deduped(self):
        duel = api.compare(policies=("vmt-ta", "vmt-ta", "round-robin"),
                           config=tiny_config())
        assert duel.policies == ("vmt-ta", "round-robin")

    def test_missing_policy_in_reduction(self):
        duel = api.compare(policies=("vmt-ta", "round-robin"),
                           config=tiny_config())
        with pytest.raises(ConfigurationError):
            duel.peak_reduction("vmt-wa")

    def test_empty_policies_rejected(self):
        with pytest.raises(ConfigurationError):
            api.compare(policies=(), config=tiny_config())


class TestSweepAndDatacenter:
    def test_sweep_delegates_to_gv_sweep(self):
        facade = api.sweep(grouping_values=(20.0, 24.0),
                           policies=("vmt-ta",), num_servers=6, seed=11)
        clear_shared_cache()
        direct = gv_sweep((20.0, 24.0), policies=("vmt-ta",),
                          num_servers=6, seed=11)
        np.testing.assert_array_equal(facade.values, direct.values)
        np.testing.assert_array_equal(facade.reductions["vmt-ta"],
                                      direct.reductions["vmt-ta"])

    def test_datacenter_needs_clusters(self):
        with pytest.raises(ConfigurationError):
            api.datacenter(num_clusters=0, config=tiny_config())


class TestDeprecationShims:
    def test_gv_sweep_positional_policies_warns_and_works(self):
        with pytest.warns(DeprecationWarning, match="policies"):
            legacy = gv_sweep((20.0,), ("vmt-ta",), num_servers=6,
                              seed=11)
        clear_shared_cache()
        modern = gv_sweep((20.0,), policies=("vmt-ta",), num_servers=6,
                          seed=11)
        np.testing.assert_array_equal(legacy.reductions["vmt-ta"],
                                      modern.reductions["vmt-ta"])

    def test_gv_sweep_rejects_extra_positionals(self):
        with pytest.raises(ConfigurationError):
            gv_sweep((20.0,), ("vmt-ta",), 6)

    def test_tco_analysis_positional_warns(self):
        with pytest.warns(DeprecationWarning, match="peak_reduction"):
            legacy = tco_analysis(0.128)
        modern = tco_analysis(peak_reduction=0.128)
        assert legacy == modern

    def test_tco_analysis_double_specification_rejected(self):
        with pytest.raises(ConfigurationError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                tco_analysis(0.128, peak_reduction=0.2)


class TestObserverAlias:
    def test_exported_and_typed_with_placement(self):
        import typing
        from repro import Observer as top_level
        assert top_level is Observer
        args = typing.get_args(Observer)[0]
        assert Placement in args

"""Unit tests for the colocation QoS models (Fig. 6)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.qos import (CACHING_SCENARIOS, SEARCH_SCENARIOS,
                                 CachingLatencyModel, ColocationScenario,
                                 SearchLatencyModel)

CACHING = CachingLatencyModel()
SEARCH = SearchLatencyModel()
C_2C, C_4C, C_6C = CACHING_SCENARIOS
S_2C, S_4C, S_6C = SEARCH_SCENARIOS


class TestScenarios:
    def test_panel_configurations(self):
        assert [s.subject_cores for s in CACHING_SCENARIOS] == [2, 4, 6]
        assert C_6C.colocated is False

    def test_rejects_more_than_six_cores(self):
        with pytest.raises(ConfigurationError):
            ColocationScenario("8C", 8, False)


class TestCachingModel:
    def test_latency_increases_with_load(self):
        rps = np.array([30_000, 45_000, 58_000])
        lat = CACHING.mean_latency_ms(rps, C_6C)
        assert np.all(np.diff(lat) > 0)

    def test_solo_best_at_low_load(self):
        """At very low load 6 cores of pure caching wins (no LLC noise)."""
        low = 26_000
        solo = CACHING.mean_latency_ms(low, C_6C)
        assert solo < CACHING.mean_latency_ms(low, C_2C)
        assert solo < CACHING.mean_latency_ms(low, C_4C)

    def test_mixture_competitive_in_middle_band(self):
        """Mid-range: colocation's bandwidth relief matches or beats solo."""
        mid = 55_000
        solo = CACHING.mean_latency_ms(mid, C_6C)
        colocated = CACHING.mean_latency_ms(mid, C_2C)
        assert colocated < solo * 1.1

    def test_colocation_raises_capacity(self):
        assert CACHING.capacity_rps(C_2C) > CACHING.capacity_rps(C_6C)

    def test_p90_above_mean(self):
        rps = np.linspace(25_000, 60_000, 8)
        for scenario in CACHING_SCENARIOS:
            assert np.all(CACHING.p90_latency_ms(rps, scenario)
                          > CACHING.mean_latency_ms(rps, scenario))

    def test_latency_in_paper_plot_range(self):
        """Fig. 6 caching panels span roughly 0-20 ms."""
        rps = np.linspace(25_000, 60_000, 20)
        for scenario in CACHING_SCENARIOS:
            lat = CACHING.mean_latency_ms(rps, scenario)
            assert lat.min() > 0.3
            assert lat.max() < 25.0

    def test_rejects_negative_rps(self):
        with pytest.raises(ConfigurationError):
            CACHING.mean_latency_ms(-1.0, C_6C)


class TestSearchModel:
    def test_colocation_slows_search_across_whole_range(self):
        """The paper's observation: decreased performance at every load."""
        clients = np.linspace(10, 50, 9)
        solo = SEARCH.mean_latency_s(clients, S_6C)
        for scenario in (S_2C, S_4C):
            assert np.all(SEARCH.mean_latency_s(clients, scenario) > solo)

    def test_fewer_cores_hurts_more(self):
        clients = 30.0
        assert SEARCH.mean_latency_s(clients, S_2C) > \
            SEARCH.mean_latency_s(clients, S_4C)

    def test_latency_in_paper_plot_range(self):
        """Fig. 6 search panels span roughly 0.05-0.5 s."""
        clients = np.linspace(10, 50, 20)
        for scenario in SEARCH_SCENARIOS:
            lat = SEARCH.mean_latency_s(clients, scenario)
            assert lat.min() > 0.03
            assert lat.max() < 0.9

    def test_p90_amplifies_mean(self):
        clients = np.linspace(10, 50, 5)
        assert np.allclose(SEARCH.p90_latency_s(clients, S_6C),
                           1.35 * SEARCH.mean_latency_s(clients, S_6C))

    def test_service_time_inflation(self):
        assert SEARCH.service_time_s(S_2C) > SEARCH.service_time_s(S_4C) \
            > SEARCH.service_time_s(S_6C)

    def test_rejects_negative_clients(self):
        with pytest.raises(ConfigurationError):
            SEARCH.mean_latency_s(-5.0, S_6C)

    def test_rejects_bad_model_parameters(self):
        with pytest.raises(ConfigurationError):
            SearchLatencyModel(base_service_s=0.0)
        with pytest.raises(ConfigurationError):
            CachingLatencyModel(solo_capacity_rps=0.0)

"""Checkpoint/resume: the bit-identical round-trip differential oracle.

The contract under test: for every policy, with and without faults, a
run that is snapshotted at any tick boundary and resumed -- in this
process or a fresh one -- produces a ``SimulationResult`` whose
``fingerprint()`` equals the straight-through run's.  The negative
tests prove the oracle has teeth: tampering with a single hidden-state
field in a snapshot (the scheduler's rotation counter, its RNG state)
is caught and located by the golden harness's first-divergence
formatter.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys
import zipfile

import numpy as np
import pytest

from repro.cluster.simulation import ClusterSimulation
from repro.config import TraceConfig, paper_cluster_config
from repro.core.policies import SCHEDULER_NAMES, make_scheduler
from repro.errors import CheckpointError, ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.scenarios import (cooling_derate, kill_servers,
                                    merge_scenarios, stuck_wax_sensors,
                                    temperature_hazard)
from repro.state import (SNAPSHOT_SCHEMA_VERSION, checkpoint_path,
                         latest_checkpoint, list_checkpoints,
                         load_snapshot, restore_simulation, resume_run,
                         save_snapshot, snapshot_manifest_path,
                         verify_roundtrip)


def _config(num_servers=16, hours=3.0, seed=7):
    cfg = paper_cluster_config(num_servers=num_servers, seed=seed)
    return dataclasses.replace(
        cfg, trace=TraceConfig(duration_hours=hours, step_seconds=60.0))


def _fault_config(**kwargs):
    cfg = _config(**kwargs)
    faults = merge_scenarios(
        kill_servers([1, 3], 0.5, repair_after_hours=1.0),
        stuck_wax_sensors([2], 1.0),
        cooling_derate(0.8, 1.5, restore_after_hours=0.5),
        temperature_hazard(500.0))
    return dataclasses.replace(cfg, faults=faults)


def _run_straight(cfg, policy):
    injector = FaultInjector(cfg) if cfg.faults.enabled else None
    return ClusterSimulation(cfg, make_scheduler(policy, cfg),
                             fault_injector=injector).run()


def _run_checkpointed(cfg, policy, directory, every):
    injector = FaultInjector(cfg) if cfg.faults.enabled else None
    sim = ClusterSimulation(cfg, make_scheduler(policy, cfg),
                            fault_injector=injector,
                            checkpoint_every=every,
                            checkpoint_dir=str(directory))
    return sim, sim.run()


# -- the differential oracle: 5 policies x faults on/off ------------------

@pytest.mark.parametrize("policy", SCHEDULER_NAMES)
@pytest.mark.parametrize("with_faults", [False, True],
                         ids=["clean", "faults"])
def test_roundtrip_all_policies(policy, with_faults, tmp_path):
    """Resume from a mid-run checkpoint; fingerprints must match."""
    cfg = _fault_config() if with_faults else _config()
    straight = _run_straight(cfg, policy)
    sim, full = _run_checkpointed(cfg, policy, tmp_path, every=60)
    # Checkpointing itself must not perturb the physics.
    assert full.fingerprint() == straight.fingerprint()
    for record in sim.checkpoint_records:
        resumed = restore_simulation(record["file"]).run()
        verify_roundtrip(straight, resumed)


@pytest.mark.parametrize("with_faults", [False, True],
                         ids=["clean", "faults"])
def test_roundtrip_tick_zero(with_faults, tmp_path):
    """A snapshot taken before the first tick resumes the whole run."""
    cfg = _fault_config() if with_faults else _config()
    straight = _run_straight(cfg, "vmt-wa")
    injector = FaultInjector(cfg) if with_faults else None
    fresh = ClusterSimulation(cfg, make_scheduler("vmt-wa", cfg),
                              fault_injector=injector)
    snapshot = fresh.snapshot()
    assert snapshot.tick == 0
    path = checkpoint_path(tmp_path, 0)
    save_snapshot(snapshot, path)
    resumed = restore_simulation(path).run()
    verify_roundtrip(straight, resumed)


def test_roundtrip_final_tick(tmp_path):
    """Resuming at the final tick yields the finished result unchanged."""
    cfg = _config()
    straight = _run_straight(cfg, "vmt-ta")
    sim, _ = _run_checkpointed(cfg, "vmt-ta", tmp_path,
                               every=cfg.trace.num_steps)
    (record,) = sim.checkpoint_records
    assert record["tick"] == cfg.trace.num_steps
    resumed = restore_simulation(record["file"]).run()
    verify_roundtrip(straight, resumed)


def test_resume_in_fresh_process(tmp_path):
    """The real crash-recovery story: resume in a separate interpreter."""
    cfg = _config()
    straight = _run_straight(cfg, "vmt-wa")
    sim, _ = _run_checkpointed(cfg, "vmt-wa", tmp_path, every=90)
    path = sim.checkpoint_records[0]["file"]
    script = (
        "import sys; sys.path.insert(0, {src!r})\n"
        "from repro.state import resume_run\n"
        "print(resume_run({path!r}).fingerprint())\n"
    ).format(src=os.path.join(os.path.dirname(__file__), "..", "src"),
             path=path)
    out = subprocess.run([sys.executable, "-c", script],
                         capture_output=True, text=True, check=True)
    assert out.stdout.strip() == straight.fingerprint()


# -- the oracle has teeth -------------------------------------------------

def test_oracle_catches_omitted_scheduler_tick(tmp_path):
    """Dropping the scheduler's rotation counter fails the oracle.

    The base scheduler's tick counter feeds the waterfill tie-breaking
    rotation -- exactly the kind of hidden state a naive snapshot would
    omit.  The tick is chosen so the rotation offset does not wrap back
    onto itself (tick % num_servers != 0 after the tamper).
    """
    cfg = _config(hours=26.0)
    straight = _run_straight(cfg, "vmt-wa")
    sim, _ = _run_checkpointed(cfg, "vmt-wa", tmp_path, every=60)
    by_tick = {r["tick"]: r["file"] for r in sim.checkpoint_records}
    snapshot = load_snapshot(by_tick[1260])
    snapshot.state["scheduler"]["tick"] = (
        int(snapshot.state["scheduler"]["tick"]) + 1)
    resumed = restore_simulation(snapshot).run()
    with pytest.raises(CheckpointError) as err:
        verify_roundtrip(straight, resumed)
    message = str(err.value)
    assert "first divergence" in message
    assert "fingerprint" in message
    # The first divergent tick is the resume point itself.
    assert "tick 1260" in message


def test_oracle_catches_omitted_scheduler_rng(tmp_path):
    """Dropping the scheduler's private RNG position fails the oracle."""
    cfg = _config(hours=26.0)
    straight = _run_straight(cfg, "vmt-wa")
    sim, _ = _run_checkpointed(cfg, "vmt-wa", tmp_path, every=1260)
    snapshot = load_snapshot(sim.checkpoint_records[0]["file"])
    rng_state = snapshot.state["scheduler"]["rng"]
    rng_state["state"]["state"] = int(rng_state["state"]["state"]) + 12345
    resumed = restore_simulation(snapshot).run()
    with pytest.raises(CheckpointError, match="first divergence"):
        verify_roundtrip(straight, resumed)


def test_oracle_passes_silently_on_match():
    cfg = _config()
    a = _run_straight(cfg, "round-robin")
    b = _run_straight(cfg, "round-robin")
    verify_roundtrip(a, b)  # must not raise


# -- snapshot format hardening --------------------------------------------

def test_load_rejects_missing_file(tmp_path):
    with pytest.raises(CheckpointError, match="not found"):
        load_snapshot(str(tmp_path / "nope.npz"))


def test_load_rejects_corrupted_archive(tmp_path):
    path = tmp_path / "bad.npz"
    path.write_bytes(b"this is not a zip archive")
    with pytest.raises(CheckpointError, match="cannot read snapshot"):
        load_snapshot(str(path))


def test_load_rejects_truncated_snapshot(tmp_path):
    cfg = _config(hours=1.0)
    sim = ClusterSimulation(cfg, make_scheduler("round-robin", cfg))
    path = str(tmp_path / "snap.npz")
    save_snapshot(sim.snapshot(), path)
    data = open(path, "rb").read()
    with open(path, "wb") as fh:
        fh.write(data[:len(data) // 2])
    with pytest.raises(CheckpointError, match="cannot read snapshot"):
        load_snapshot(path)


def test_load_rejects_foreign_npz(tmp_path):
    path = str(tmp_path / "foreign.npz")
    np.savez(path, values=np.arange(3))
    with pytest.raises(CheckpointError,
                       match="not a simulation snapshot"):
        load_snapshot(path)


def test_load_rejects_future_schema_version(tmp_path):
    cfg = _config(hours=1.0)
    sim = ClusterSimulation(cfg, make_scheduler("round-robin", cfg))
    snapshot = sim.snapshot()
    snapshot.schema = SNAPSHOT_SCHEMA_VERSION + 1
    path = str(tmp_path / "future.npz")
    save_snapshot(snapshot, path)
    with pytest.raises(CheckpointError) as err:
        load_snapshot(path)
    message = str(err.value)
    assert f"schema version {SNAPSHOT_SCHEMA_VERSION + 1}" in message
    assert f"reads version {SNAPSHOT_SCHEMA_VERSION}" in message


def test_restore_refuses_wrong_config(tmp_path):
    cfg = _config(hours=1.0)
    sim = ClusterSimulation(cfg, make_scheduler("vmt-ta", cfg))
    path = str(tmp_path / "snap.npz")
    save_snapshot(sim.snapshot(), path)
    other = _config(hours=1.0, seed=99)
    target = ClusterSimulation(other, make_scheduler("vmt-ta", other))
    with pytest.raises(CheckpointError,
                       match="different configuration"):
        target.restore(load_snapshot(path))


def test_restore_refuses_wrong_policy(tmp_path):
    cfg = _config(hours=1.0)
    sim = ClusterSimulation(cfg, make_scheduler("vmt-ta", cfg))
    snapshot = sim.snapshot()
    target = ClusterSimulation(cfg, make_scheduler("vmt-wa", cfg))
    with pytest.raises(CheckpointError, match="policy"):
        target.restore(snapshot)


def test_restore_refuses_used_simulation(tmp_path):
    cfg = _config(hours=1.0)
    sim = ClusterSimulation(cfg, make_scheduler("round-robin", cfg))
    snapshot = sim.snapshot()
    sim.run()
    with pytest.raises(CheckpointError,
                       match="freshly constructed"):
        sim.restore(snapshot)


def test_manifest_sidecar(tmp_path):
    cfg = _config(hours=1.0)
    sim = ClusterSimulation(cfg, make_scheduler("vmt-ta", cfg))
    path = str(tmp_path / "snap.npz")
    manifest = save_snapshot(sim.snapshot(), path)
    sidecar = snapshot_manifest_path(path)
    assert os.path.exists(sidecar)
    on_disk = json.loads(open(sidecar).read())
    assert on_disk == manifest
    assert on_disk["tick"] == 0
    assert on_disk["policy"] == "vmt-ta"
    assert on_disk["snapshot_file"] == os.path.basename(path)
    import hashlib
    assert on_disk["snapshot_sha256"] == hashlib.sha256(
        open(path, "rb").read()).hexdigest()


def test_snapshot_is_pickle_free(tmp_path):
    """The payload must load with allow_pickle=False (no code execution)."""
    cfg = _fault_config(hours=1.0)
    sim = ClusterSimulation(cfg, make_scheduler("vmt-wa", cfg),
                            fault_injector=FaultInjector(cfg))
    path = str(tmp_path / "snap.npz")
    save_snapshot(sim.snapshot(), path)
    with np.load(path, allow_pickle=False) as data:
        assert "__meta__" in data.files
    with zipfile.ZipFile(path) as zf:
        assert zf.testzip() is None


# -- directory helpers ----------------------------------------------------

def test_checkpoint_directory_helpers(tmp_path):
    assert list_checkpoints(tmp_path) == []
    assert latest_checkpoint(tmp_path) is None
    cfg = _config()
    sim, _ = _run_checkpointed(cfg, "round-robin", tmp_path, every=60)
    ticks = [t for t, _ in list_checkpoints(tmp_path)]
    assert ticks == [60, 120, 180]
    assert latest_checkpoint(tmp_path).endswith("checkpoint-000180.npz")


# -- run ledger lineage ---------------------------------------------------

def test_ledger_records_checkpoint_lineage(tmp_path):
    cfg = _config()
    from repro.obs.telemetry import Telemetry
    telemetry = Telemetry(str(tmp_path / "runs"))
    sim = ClusterSimulation(cfg, make_scheduler("vmt-ta", cfg),
                            telemetry=telemetry,
                            checkpoint_every=60,
                            checkpoint_dir=str(tmp_path / "ckpt"))
    sim.run()
    manifest = json.loads(open(telemetry.manifest_path).read())
    lineage = manifest["checkpoints"]
    assert [entry["tick"] for entry in lineage] == [60, 120, 180]
    for entry in lineage:
        assert os.path.exists(entry["file"])
        assert len(entry["sha256"]) == 64


# -- api facade -----------------------------------------------------------

def test_api_run_checkpoint_and_resume(tmp_path):
    from repro import api
    straight = api.run(policy="vmt-ta", config=_config())
    api.run(policy="vmt-ta", config=_config(),
            checkpoint_every=90, checkpoint_dir=str(tmp_path))
    resumed = api.run(resume_from=latest_checkpoint(tmp_path))
    assert resumed.fingerprint() == straight.fingerprint()


def test_api_resume_rejects_conflicting_arguments(tmp_path):
    from repro import api
    api.run(policy="vmt-ta", config=_config(),
            checkpoint_every=90, checkpoint_dir=str(tmp_path))
    path = latest_checkpoint(tmp_path)
    with pytest.raises(ConfigurationError, match="shortcut"):
        api.run(resume_from=path, num_servers=5)
    with pytest.raises(ConfigurationError, match="config"):
        api.run(resume_from=path, config=_config())
    with pytest.raises(ConfigurationError, match="policy"):
        api.run(resume_from=path, policy="vmt-wa")
    with pytest.raises(ConfigurationError, match="policy"):
        api.run()


# -- crash-recoverable sweeps ---------------------------------------------

def test_runner_spec_resumes_from_latest_checkpoint(tmp_path):
    """A killed sweep spec picks up from its own checkpoint subdir."""
    from repro.perf.runner import ExperimentRunner, RunSpec, execute_spec
    cfg = _config(hours=4.0)
    straight = ExperimentRunner(1).run_one(RunSpec(cfg, "vmt-ta"))
    spec = RunSpec(cfg, "vmt-ta", checkpoint_every=60,
                   checkpoint_dir=str(tmp_path))
    full = execute_spec(spec)
    assert full.fingerprint() == straight.fingerprint()
    subdir = os.path.join(str(tmp_path), os.listdir(str(tmp_path))[0])
    # Simulate the crash: drop the tail checkpoints so the latest is
    # mid-run, then retry the identical spec.
    checkpoints = list_checkpoints(subdir)
    assert [t for t, _ in checkpoints] == [60, 120, 180, 240]
    for _, path in checkpoints[2:]:
        os.remove(path)
    resumed = execute_spec(spec)
    assert resumed.fingerprint() == straight.fingerprint()


def test_runner_ignores_stale_checkpoint_from_other_config(tmp_path):
    """An edited sweep must not resume into the old experiment."""
    from repro.perf.runner import ExperimentRunner, RunSpec, execute_spec
    cfg = _config(hours=4.0)
    spec = RunSpec(cfg, "vmt-ta", label="point",
                   checkpoint_every=60, checkpoint_dir=str(tmp_path))
    execute_spec(spec)
    edited = _config(hours=4.0, seed=99)
    edited_spec = RunSpec(edited, "vmt-ta", label="point",
                          checkpoint_every=60,
                          checkpoint_dir=str(tmp_path))
    straight = ExperimentRunner(1).run_one(RunSpec(edited, "vmt-ta"))
    resumed = execute_spec(edited_spec)
    assert resumed.fingerprint() == straight.fingerprint()


def test_runner_skips_corrupted_checkpoint(tmp_path):
    """A half-written checkpoint falls back to the previous one."""
    from repro.perf.runner import execute_spec, RunSpec, ExperimentRunner
    cfg = _config(hours=4.0)
    straight = ExperimentRunner(1).run_one(RunSpec(cfg, "vmt-ta"))
    spec = RunSpec(cfg, "vmt-ta", checkpoint_every=60,
                   checkpoint_dir=str(tmp_path))
    execute_spec(spec)
    subdir = os.path.join(str(tmp_path), os.listdir(str(tmp_path))[0])
    _, last = list_checkpoints(subdir)[-1]
    data = open(last, "rb").read()
    with open(last, "wb") as fh:
        fh.write(data[:100])
    resumed = execute_spec(spec)
    assert resumed.fingerprint() == straight.fingerprint()


# -- constructor validation -----------------------------------------------

def test_checkpoint_every_requires_directory():
    cfg = _config(hours=1.0)
    from repro.errors import SimulationError
    with pytest.raises(SimulationError, match="checkpoint_dir"):
        ClusterSimulation(cfg, make_scheduler("vmt-ta", cfg),
                          checkpoint_every=10)
    with pytest.raises(SimulationError, match="positive"):
        ClusterSimulation(cfg, make_scheduler("vmt-ta", cfg),
                          checkpoint_every=0, checkpoint_dir="/tmp/x")

"""Tests for the heterogeneous fleet subsystem.

The load-bearing contract: a homogeneous fleet under the
``"independent"`` policy is *bit-identical* to ``run_datacenter`` --
same derived seeds, same stagger, same fingerprints.  Everything the
fleet layer adds (hardware classes, markets, routing, batteries) is
then tested against its own invariants: demand conservation, battery
envelopes, non-negative money.
"""

import numpy as np
import pytest

from repro import api
from repro.cluster.multi import run_datacenter
from repro.config import (BatteryConfig, SimulationConfig, TraceConfig,
                          hardware_class)
from repro.core import SCHEDULER_NAMES
from repro.errors import ConfigurationError, SimulationError
from repro.fleet import (FLEET_POLICIES, FleetSpec, SiteSpec, demo_fleet,
                         run_fleet)
from repro.fleet.battery import dispatch_battery
from repro.fleet.router import (conservation_violation, route_traces,
                                routed_site_traces)
from repro.perf.cache import shared_trace
from repro.tco.energy import ElectricityTariff


def tiny_config(**kwargs):
    return SimulationConfig(
        num_servers=kwargs.pop("num_servers", 10),
        trace=TraceConfig(duration_hours=4.0),
        seed=kwargs.pop("seed", 5), **kwargs)


class TestHomogeneousIdentity:
    @pytest.mark.parametrize("policy", SCHEDULER_NAMES)
    def test_fingerprint_identical_to_run_datacenter(self, policy):
        # The acceptance oracle: per-site fingerprints and the
        # aggregate load must match the multi-cluster study exactly.
        config = tiny_config()
        golden = run_datacenter(config, 2, policy=policy,
                                stagger_hours=2.0)
        fleet = run_fleet(FleetSpec.homogeneous(config, 2, policy=policy,
                                                stagger_hours=2.0),
                          checks="cheap")
        assert ([r.fingerprint() for r in fleet.cluster_results]
                == [r.fingerprint() for r in golden.cluster_results])
        assert np.array_equal(fleet.total_cooling_load_w,
                              golden.total_cooling_load_w)

    def test_datacenter_projection_matches(self):
        config = tiny_config()
        golden = run_datacenter(config, 3)
        projected = run_fleet(
            FleetSpec.homogeneous(config, 3)).to_datacenter_result()
        assert np.array_equal(projected.total_cooling_load_w,
                              golden.total_cooling_load_w)
        assert np.array_equal(projected.times_s, golden.times_s)

    def test_api_fleet_run_homogeneous(self):
        config = tiny_config()
        golden = run_datacenter(config, 2)
        fleet = api.fleet_run(num_sites=2, config=config)
        assert ([r.fingerprint() for r in fleet.cluster_results]
                == [r.fingerprint() for r in golden.cluster_results])


class TestFleetSpec:
    def test_site_config_applies_hardware_class(self):
        base = tiny_config()
        spec = FleetSpec(sites=(SiteSpec(name="a"),
                                SiteSpec(name="b", hardware="gpu")),
                         base_config=base)
        gpu = hardware_class("gpu")
        assert spec.site_config(0).server == base.server
        assert spec.site_config(1).server == gpu.server
        assert spec.site_config(1).wax == gpu.wax

    def test_site_config_derives_seed_per_site(self):
        spec = FleetSpec.homogeneous(tiny_config(), 3)
        assert [spec.site_config(i).seed for i in range(3)] == [5, 6, 7]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FleetSpec(sites=()).validate()
        with pytest.raises(ConfigurationError):
            FleetSpec(sites=(SiteSpec(name="x"),
                             SiteSpec(name="x"))).validate()
        with pytest.raises(ConfigurationError):
            FleetSpec(sites=(SiteSpec(name="x"),),
                      policy="no-such-policy").validate()
        with pytest.raises(ConfigurationError):
            SiteSpec(name="x", hardware="tpu").validate()
        with pytest.raises(ConfigurationError):
            SiteSpec(name="x", latency_ms=-1.0).validate()

    def test_policy_table(self):
        assert set(FLEET_POLICIES) == {
            "independent", "latency-spill", "price-arbitrage",
            "battery-co-schedule", "thermal-placement"}
        for policy in FLEET_POLICIES.values():
            policy.validate()

    def test_demo_fleet_has_the_documented_shape(self):
        spec = demo_fleet(tiny_config())
        spec.validate()
        names = [site.name for site in spec.sites]
        assert names == ["ashburn", "reykjavik", "phoenix"]
        hardware = {site.name: site.hardware for site in spec.sites}
        assert hardware["reykjavik"] == "gpu"
        assert spec.sites[1].tariff.wraps_midnight
        assert spec.sites[1].battery.enabled
        assert not spec.sites[0].battery.enabled


class TestRouting:
    def _traces(self, num_sites=3):
        config = tiny_config()
        return [shared_trace(config.replace(seed=config.seed + i))
                for i in range(num_sites)]

    def test_conserves_demand(self):
        traces = self._traces()
        steps = traces[0].num_steps
        # Site 0 is expensive every tick; sites 1-2 are cheap.
        scores = np.tile(np.array([1.0, 0.0, 0.0]), (steps, 1))
        plan = route_traces(traces, scores,
                            sites_latency_ms=[1.0, 1.0, 1.0],
                            latency_budget_ms=50.0,
                            spill_fraction=0.25)
        assert plan.moved_job_cores > 0
        assert sum(plan.net_received) == 0
        assert plan.net_received[0] < 0
        assert conservation_violation(traces, plan.traces) is None

    def test_latency_budget_blocks_moves(self):
        traces = self._traces()
        steps = traces[0].num_steps
        scores = np.tile(np.array([1.0, 0.0, 0.0]), (steps, 1))
        plan = route_traces(traces, scores,
                            sites_latency_ms=[100.0, 100.0, 100.0],
                            latency_budget_ms=50.0,
                            spill_fraction=0.25)
        assert plan.moved_job_cores == 0
        assert plan.active_tick_fraction == 0.0

    def test_flat_scores_move_nothing(self):
        traces = self._traces()
        steps = traces[0].num_steps
        plan = route_traces(traces, np.zeros((steps, 3)),
                            sites_latency_ms=[1.0, 1.0, 1.0],
                            latency_budget_ms=50.0,
                            spill_fraction=0.25)
        assert plan.moved_job_cores == 0

    def test_none_mode_is_a_no_op(self):
        traces = self._traces(2)
        plan = routed_site_traces(
            "none", traces, tariffs=[ElectricityTariff()] * 2,
            ambients_c=[np.zeros(traces[0].num_steps)] * 2,
            sites_latency_ms=[1.0, 1.0], latency_budget_ms=50.0,
            spill_fraction=0.25)
        assert plan.moved_job_cores == 0
        assert plan.traces[0] is traces[0]

    def test_price_mode_moves_away_from_peak(self):
        traces = self._traces(2)
        # Site 0 is in its peak window all day; site 1's tariff is flat
        # at the off-peak rate, so demand flows 0 -> 1 every tick.
        plan = routed_site_traces(
            "price", traces,
            tariffs=[ElectricityTariff(peak_window_h=(0.0, 24.0)),
                     ElectricityTariff(peak_rate_usd_per_kwh=0.08,
                                       off_peak_rate_usd_per_kwh=0.08)],
            ambients_c=[np.zeros(traces[0].num_steps)] * 2,
            sites_latency_ms=[1.0, 1.0], latency_budget_ms=50.0,
            spill_fraction=0.25)
        assert plan.net_received[0] < 0 < plan.net_received[1]
        assert conservation_violation(traces, plan.traces) is None


class TestBattery:
    BATTERY = BatteryConfig(capacity_kwh=100.0, max_charge_kw=50.0,
                            max_discharge_kw=50.0)

    def test_idle_mode_is_a_no_op(self):
        load = np.full(24, 80.0)
        hours = np.arange(24, dtype=np.float64)
        dispatch = dispatch_battery(load, hours, 3600.0, self.BATTERY,
                                    ElectricityTariff(), mode="idle")
        assert np.array_equal(dispatch.grid_kw, load)
        assert not dispatch.active

    def test_arbitrage_charges_off_peak_discharges_in_peak(self):
        tariff = ElectricityTariff(peak_window_h=(12.0, 22.0))
        load = np.full(24, 80.0)
        hours = np.arange(24, dtype=np.float64)
        dispatch = dispatch_battery(load, hours, 3600.0, self.BATTERY,
                                    tariff, mode="arbitrage")
        peak = tariff.is_peak(hours)
        assert (dispatch.grid_kw[peak] < load[peak]).any()
        assert (dispatch.grid_kw[~peak] > load[~peak]).any()
        assert dispatch.charged_kwh > 0
        assert dispatch.discharged_kwh > 0

    def test_envelopes_hold(self):
        tariff = ElectricityTariff(peak_window_h=(22.0, 8.0))
        load = np.abs(np.sin(np.linspace(0, 6, 48))) * 120.0
        hours = np.linspace(0.0, 24.0, 48, endpoint=False)
        dispatch = dispatch_battery(load, hours, 1800.0, self.BATTERY,
                                    tariff, mode="arbitrage")
        assert dispatch.grid_kw.min() >= 0.0
        assert dispatch.soc_kwh.min() >= 0.0
        assert dispatch.soc_kwh.max() <= self.BATTERY.capacity_kwh

    def test_round_trip_losses(self):
        # A full cycle returns round_trip_efficiency of what it stored.
        battery = BatteryConfig(capacity_kwh=50.0, max_charge_kw=50.0,
                                max_discharge_kw=50.0,
                                round_trip_efficiency=0.81,
                                initial_soc=0.0)
        tariff = ElectricityTariff(peak_window_h=(12.0, 24.0))
        load = np.full(24, 100.0)
        hours = np.arange(24, dtype=np.float64)
        dispatch = dispatch_battery(load, hours, 3600.0, battery, tariff,
                                    mode="arbitrage")
        # Stored energy is drained completely by the 12-hour peak.
        assert dispatch.soc_kwh[-1] == pytest.approx(0.0, abs=1e-9)
        grid_extra = float((dispatch.grid_kw - load)[
            dispatch.grid_kw > load].sum())
        assert dispatch.discharged_kwh == pytest.approx(
            grid_extra * 0.81, rel=1e-6)

    def test_peak_shave_flattens_the_draw(self):
        load = np.concatenate([np.full(12, 40.0), np.full(12, 120.0)])
        hours = np.arange(24, dtype=np.float64)
        dispatch = dispatch_battery(load, hours, 3600.0, self.BATTERY,
                                    ElectricityTariff(),
                                    mode="peak-shave")
        # Above-mean ticks are shaved (until the cell drains) and
        # recharging never lifts the valley above the mean line.
        assert dispatch.discharged_kwh > 0
        assert (dispatch.grid_kw[12:] < load[12:]).any()
        mean_kw = float(load.mean())
        assert dispatch.grid_kw[:12].max() <= mean_kw + 1e-9
        assert dispatch.grid_kw.max() <= load.max()
        assert dispatch.grid_kw.min() >= load.min()

    def test_disabled_battery_never_acts(self):
        load = np.full(24, 80.0)
        hours = np.arange(24, dtype=np.float64)
        dispatch = dispatch_battery(load, hours, 3600.0, BatteryConfig(),
                                    ElectricityTariff(),
                                    mode="arbitrage")
        assert not dispatch.active
        assert np.array_equal(dispatch.grid_kw, load)


class TestHeterogeneousFleet:
    def test_demo_fleet_end_to_end(self):
        result = api.fleet_run(demo=True, config=tiny_config(),
                               policy="price-arbitrage", checks="cheap")
        assert result.num_sites == 3
        assert result.sites == ("ashburn", "reykjavik", "phoenix")
        assert np.isfinite(result.total_energy_cost_usd)
        assert result.total_energy_cost_usd >= 0
        assert np.isfinite(result.total_carbon_kg)
        summary = result.summary()
        assert len(summary["sites"]) == 3
        assert "energy_cost_usd" in summary["sites"][0]
        text = result.to_text()
        assert "reykjavik" in text

    def test_gpu_site_runs_hotter_hardware(self):
        result = api.fleet_run(demo=True, config=tiny_config(),
                               policy="independent", checks="cheap")
        gpu = result.site("reykjavik").result.config.server
        assert gpu == hardware_class("gpu").server

    def test_thermal_placement_routes_away_from_the_desert(self):
        spec = demo_fleet(tiny_config(),
                          fleet_policy_name="thermal-placement",
                          stagger_hours=0.0)
        result = run_fleet(spec, checks="cheap")
        assert result.moved_job_cores > 0
        assert result.site("phoenix").net_routed_job_cores < 0

    def test_routed_site_failure_names_the_site(self, monkeypatch):
        # The routed (in-process) path must surface a failing site as a
        # readable SimulationError, mirroring the unrouted bugfix.
        from repro.fleet import run as fleet_run_module
        from repro.perf.runner import RunFailure

        real_execute = fleet_run_module._execute_site

        def failing(spec, trace):
            if "broken" in spec.name:
                return RunFailure(
                    spec=spec, error_type="ValueError",
                    message="injected site failure",
                    traceback_text="Traceback (most recent call last):"
                                   "\n  injected")
            return real_execute(spec, trace)

        monkeypatch.setattr(fleet_run_module, "_execute_site", failing)
        spec = FleetSpec(
            sites=(SiteSpec(name="good"), SiteSpec(name="broken")),
            base_config=tiny_config(), policy="latency-spill")
        with pytest.raises(SimulationError) as err:
            run_fleet(spec)
        message = str(err.value)
        assert "broken" in message
        assert "injected site failure" in message
        assert "Traceback" in message

    def test_unknown_site_lookup(self):
        result = api.fleet_run(num_sites=2, config=tiny_config())
        with pytest.raises(SimulationError):
            result.site("atlantis")

    def test_api_argument_validation(self):
        with pytest.raises(ConfigurationError):
            api.fleet_run(config=tiny_config())  # no shape chosen
        with pytest.raises(ConfigurationError):
            api.fleet_run(demo=True, num_sites=2, config=tiny_config())
        with pytest.raises(ConfigurationError):
            api.fleet_run(fleet=demo_fleet(tiny_config()), demo=True)
        with pytest.raises(ConfigurationError):
            api.fleet_run(num_sites=2, policy="no-such-policy",
                          config=tiny_config())


class TestSuiteLeaderboardColumns:
    def test_cost_and_carbon_columns_are_finite(self):
        report = api.stress(scenarios=("heat-wave",),
                            policies=("round-robin", "vmt-ta"),
                            num_servers=6, duration_hours=3.0, seed=2)
        for record in report.records:
            if record.failure is None:
                assert np.isfinite(record.energy_cost_usd)
                assert record.energy_cost_usd >= 0
                assert np.isfinite(record.carbon_kg)
        for entry in report.leaderboard():
            row = entry.to_json()
            assert np.isfinite(row["mean_energy_cost_usd"])
            assert np.isfinite(row["mean_carbon_kg"])

"""Tests for rack layout and hot-group power balance."""

import numpy as np
import pytest

from repro.cluster.racks import RackLayout, compare_hot_group_placements
from repro.errors import ConfigurationError


class TestRackLayout:
    def test_paper_dimensions(self):
        layout = RackLayout(num_servers=1000, servers_per_rack=20)
        assert layout.num_racks == 50

    def test_partial_last_rack(self):
        layout = RackLayout(num_servers=45, servers_per_rack=20)
        assert layout.num_racks == 3

    def test_contiguous_mapping(self):
        layout = RackLayout(num_servers=40, servers_per_rack=20)
        racks = layout.contiguous_rack_of()
        assert racks[0] == 0 and racks[19] == 0 and racks[20] == 1

    def test_interleaved_mapping_spreads_neighbors(self):
        layout = RackLayout(num_servers=40, servers_per_rack=20)
        racks = layout.interleaved_rack_of()
        assert racks[0] != racks[1]
        # Every rack receives the same number of servers.
        assert set(np.bincount(racks)) == {20}

    def test_per_rack_power_sums(self):
        layout = RackLayout(num_servers=4, servers_per_rack=2)
        power = np.array([100.0, 200.0, 300.0, 400.0])
        per_rack = layout.per_rack_power_w(power,
                                           layout.contiguous_rack_of())
        assert list(per_rack) == [300.0, 700.0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RackLayout(num_servers=0)
        with pytest.raises(ConfigurationError):
            RackLayout(num_servers=10, servers_per_rack=0)
        layout = RackLayout(num_servers=4, servers_per_rack=2)
        with pytest.raises(ConfigurationError):
            layout.per_rack_power_w(np.zeros(3),
                                    layout.contiguous_rack_of())


class TestHotGroupPlacement:
    def test_interleaving_balances_a_vmt_power_profile(self):
        """The paper's deployment remark, quantified: a hot group on
        contiguous racks overloads them; interleaved racks stay near the
        mean."""
        layout = RackLayout(num_servers=100, servers_per_rack=20)
        power = np.full(100, 150.0)
        power[:62] = 290.0  # the GV=22 hot group at peak
        contiguous, interleaved = compare_hot_group_placements(layout,
                                                               power)
        assert contiguous > 1.2          # whole racks run ~30% hot
        assert interleaved < 1.05        # every rack near the mean
        assert interleaved < contiguous

    def test_uniform_power_is_balanced_either_way(self):
        layout = RackLayout(num_servers=100, servers_per_rack=20)
        power = np.full(100, 225.0)
        contiguous, interleaved = compare_hot_group_placements(layout,
                                                               power)
        assert contiguous == pytest.approx(1.0)
        assert interleaved == pytest.approx(1.0)

    def test_end_to_end_with_simulated_power(self):
        from repro import paper_cluster_config, make_scheduler
        from repro.cluster.simulation import ClusterSimulation

        config = paper_cluster_config(num_servers=60, grouping_value=22.0)
        sim = ClusterSimulation(config,
                                make_scheduler("vmt-ta", config),
                                record_heatmaps=False)
        peak_power = {}

        def observe(time_s, demand, placement, cluster):
            snapshot = cluster.power_w
            if snapshot.sum() > peak_power.get("total", -1):
                peak_power["total"] = snapshot.sum()
                peak_power["servers"] = snapshot

        sim.add_observer(observe)
        sim.run()
        layout = RackLayout(num_servers=60, servers_per_rack=20)
        contiguous, interleaved = compare_hot_group_placements(
            layout, peak_power["servers"])
        assert interleaved < contiguous

"""Unit tests for the server substrate: CPU, power, server, sensors."""

import numpy as np
import pytest

from repro.config import ServerConfig
from repro.errors import CapacityError, ConfigurationError
from repro.server.cpu import CPUSpec, XEON_E7_4809_V4
from repro.server.power import LinearPowerModel
from repro.server.sensors import PowerSensor, TemperatureSensor
from repro.server.server import Server
from repro.workloads.workload import WORKLOADS

SPEC = ServerConfig()


class TestCPUSpec:
    def test_paper_cpu(self):
        assert XEON_E7_4809_V4.cores == 8
        assert "4809" in XEON_E7_4809_V4.name

    def test_per_core_power_divides_table1_value(self):
        assert XEON_E7_4809_V4.per_core_power(37.2) == pytest.approx(4.65)

    def test_rejects_bad_specs(self):
        with pytest.raises(ConfigurationError):
            CPUSpec(name="x", cores=0, tdp_w=100, base_clock_ghz=2.0)
        with pytest.raises(ConfigurationError):
            CPUSpec(name="x", cores=8, tdp_w=0, base_clock_ghz=2.0)
        with pytest.raises(ConfigurationError):
            XEON_E7_4809_V4.per_core_power(-1.0)


class TestLinearPowerModel:
    def test_idle_floor(self):
        model = LinearPowerModel(SPEC)
        assert model.server_power(0.0) == pytest.approx(100.0)

    def test_linear_in_dynamic_power(self):
        model = LinearPowerModel(SPEC)
        assert model.server_power(150.0) == pytest.approx(250.0)

    def test_clamped_at_peak(self):
        model = LinearPowerModel(SPEC)
        assert model.server_power(1000.0) == pytest.approx(500.0)

    def test_vectorized(self):
        model = LinearPowerModel(SPEC)
        out = model.server_power(np.array([0.0, 100.0, 900.0]))
        assert np.allclose(out, [100.0, 200.0, 500.0])

    def test_rejects_negative_dynamic(self):
        with pytest.raises(ConfigurationError):
            LinearPowerModel(SPEC).server_power(-1.0)

    def test_utilization_power_endpoints(self):
        model = LinearPowerModel(SPEC)
        assert model.utilization_power(0.0) == pytest.approx(100.0)
        assert model.utilization_power(1.0) == pytest.approx(500.0)

    def test_utilization_power_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            LinearPowerModel(SPEC).utilization_power(1.5)

    def test_would_exceed_peak(self):
        model = LinearPowerModel(SPEC)
        mask = model.would_exceed_peak(np.array([100.0, 450.0]))
        assert list(mask) == [False, True]


class TestServer:
    def test_assignment_and_power(self):
        server = Server(0, SPEC)
        search = WORKLOADS["WebSearch"]
        server.assign(search, 8)
        assert server.busy_cores == 8
        # 8 cores * 4.65 W + 100 W idle
        assert server.power_w == pytest.approx(137.2)

    def test_mixed_assignments_sum(self):
        server = Server(0, SPEC)
        server.assign(WORKLOADS["WebSearch"], 4)
        server.assign(WORKLOADS["DataCaching"], 4)
        expected = 100.0 + 4 * 4.65 + 4 * (13.5 / 8)
        assert server.power_w == pytest.approx(expected)

    def test_capacity_enforced(self):
        server = Server(0, SPEC)
        with pytest.raises(CapacityError):
            server.assign(WORKLOADS["VirusScan"], 33)

    def test_release_and_clear(self):
        server = Server(0, SPEC)
        caching = WORKLOADS["DataCaching"]
        server.assign(caching, 10)
        server.release(caching, 4)
        assert server.busy_cores == 6
        server.clear()
        assert server.busy_cores == 0
        assert server.power_w == pytest.approx(100.0)

    def test_release_more_than_held_raises(self):
        server = Server(0, SPEC)
        server.assign(WORKLOADS["DataCaching"], 2)
        with pytest.raises(ConfigurationError):
            server.release(WORKLOADS["DataCaching"], 3)

    def test_utilization(self):
        server = Server(0, SPEC)
        server.assign(WORKLOADS["Clustering"], 16)
        assert server.utilization == pytest.approx(0.5)

    def test_full_server_of_each_workload_matches_classifier_power(self):
        # A server packed with one workload draws idle + 4 * per-CPU power.
        for workload in WORKLOADS.values():
            server = Server(0, SPEC)
            server.assign(workload, 32)
            expected = min(100.0 + 4 * workload.per_cpu_power_w, 500.0)
            assert server.power_w == pytest.approx(expected)


class TestSensors:
    def test_noise_free_sensor_reads_truth_quantized(self):
        sensor = TemperatureSensor(noise_stdev_c=0.0, quantization_c=0.25)
        assert sensor.read(35.62) == pytest.approx(35.5)

    def test_zero_quantization_reads_exactly(self):
        sensor = TemperatureSensor(noise_stdev_c=0.0, quantization_c=0.0)
        assert sensor.read(35.62) == pytest.approx(35.62)

    def test_noise_has_expected_scale(self, rng):
        sensor = TemperatureSensor(noise_stdev_c=0.5, quantization_c=0.0,
                                   rng=rng)
        readings = sensor.read(np.full(10_000, 30.0))
        assert abs(readings.std() - 0.5) < 0.05

    def test_power_sensor_never_negative(self, rng):
        sensor = PowerSensor(noise_stdev_w=5.0, rng=rng)
        readings = sensor.read(np.full(1000, 0.5))
        assert np.all(readings >= 0.0)

    def test_rejects_negative_noise(self):
        with pytest.raises(ConfigurationError):
            TemperatureSensor(noise_stdev_c=-0.5)

"""Unit tests for cooling load accounting and plant sizing."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ThermalModelError
from repro.thermal.cooling import CoolingLoadTracker, CoolingSystem


class TestCoolingLoadTracker:
    def test_cooling_load_is_power_minus_absorption(self):
        tracker = CoolingLoadTracker()
        load = tracker.record(0.0, np.array([200.0, 300.0]),
                              np.array([40.0, 10.0]))
        assert load == pytest.approx(450.0)

    def test_wax_release_adds_to_load(self):
        tracker = CoolingLoadTracker()
        load = tracker.record(0.0, np.array([200.0]), np.array([-60.0]))
        assert load == pytest.approx(260.0)

    def test_rejects_nonfinite_power(self):
        tracker = CoolingLoadTracker()
        with pytest.raises(ThermalModelError, match="server_power_w"):
            tracker.record(0.0, np.array([200.0, np.nan]),
                           np.array([0.0, 0.0]))
        with pytest.raises(ThermalModelError, match="server_power_w"):
            tracker.record(0.0, np.array([np.inf]), np.array([0.0]))

    def test_rejects_nonfinite_absorption_and_time(self):
        tracker = CoolingLoadTracker()
        with pytest.raises(ThermalModelError, match="wax_absorption_w"):
            tracker.record(0.0, np.array([200.0]), np.array([np.nan]))
        with pytest.raises(ThermalModelError, match="time"):
            tracker.record(float("nan"), np.array([200.0]),
                           np.array([0.0]))

    def test_rejection_leaves_no_partial_sample(self):
        """A rejected sample must not poison peak_w or the series."""
        tracker = CoolingLoadTracker()
        tracker.record(0.0, np.array([100.0]), np.array([0.0]))
        with pytest.raises(ThermalModelError):
            tracker.record(1.0, np.array([np.nan]), np.array([0.0]))
        assert len(tracker.times_s) == 1
        assert tracker.peak_w == pytest.approx(100.0)

    def test_peak_and_mean(self):
        tracker = CoolingLoadTracker()
        for t, p in enumerate([100.0, 300.0, 200.0]):
            tracker.record(float(t), np.array([p]), np.array([0.0]))
        assert tracker.peak_w == pytest.approx(300.0)
        assert tracker.mean_w == pytest.approx(200.0)

    def test_peak_reduction_vs_baseline(self):
        tracker = CoolingLoadTracker()
        tracker.record(0.0, np.array([174.4]), np.array([0.0]))
        assert tracker.peak_reduction_vs(200.0) == pytest.approx(0.128)

    def test_empty_tracker_raises(self):
        with pytest.raises(ThermalModelError):
            __ = CoolingLoadTracker().peak_w

    def test_bad_baseline_raises(self):
        tracker = CoolingLoadTracker()
        tracker.record(0.0, np.array([1.0]), np.array([0.0]))
        with pytest.raises(ThermalModelError):
            tracker.peak_reduction_vs(0.0)

    def test_series_accessors(self):
        tracker = CoolingLoadTracker()
        tracker.record(0.0, np.array([100.0]), np.array([0.0]))
        tracker.record(60.0, np.array([110.0]), np.array([5.0]))
        assert np.allclose(tracker.times_s, [0.0, 60.0])
        assert np.allclose(tracker.loads_w, [100.0, 105.0])


class TestCoolingSystem:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            CoolingSystem(0.0)

    def test_utilization_and_overload(self):
        plant = CoolingSystem(1000.0)
        loads = [500.0, 900.0, 1100.0]
        assert np.allclose(plant.utilization(loads), [0.5, 0.9, 1.1])
        assert plant.overloaded(loads)
        assert not plant.overloaded([500.0, 999.0])

    def test_headroom(self):
        plant = CoolingSystem(1000.0)
        assert plant.headroom_w([600.0, 800.0]) == pytest.approx(200.0)
        assert plant.headroom_w([1200.0]) == pytest.approx(-200.0)

    def test_resized_by_vmt_reduction(self):
        plant = CoolingSystem(25e6)
        smaller = plant.resized(0.128)
        assert smaller.capacity_w == pytest.approx(21.8e6)

    def test_resized_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            CoolingSystem(1.0).resized(1.0)
        with pytest.raises(ConfigurationError):
            CoolingSystem(1.0).resized(-0.1)

    def test_oversubscription_workflow(self):
        """The Section V-E what-if: shrink the plant by the measured
        reduction and confirm the reduced load series still fits."""
        baseline_peak = 1000.0
        reduced_series = [700.0, 872.0, 850.0]  # peak shaved by 12.8%
        plant = CoolingSystem(baseline_peak).resized(0.128)
        assert not plant.overloaded(reduced_series)

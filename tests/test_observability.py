"""Tests for the observability layer: registry, tracer, ledger, schema.

The cardinal invariant -- telemetry never changes a simulated bit -- is
asserted here fingerprint-for-fingerprint across every policy, along
with the round-trip contracts: what the tracer writes parses and
validates, what the ledger records is deterministic across serial and
pooled execution, and the metric columns line up tick for tick.
"""

import json
import os

import numpy as np
import pytest

from repro.config import TraceConfig, paper_cluster_config
from repro.core.policies import SCHEDULER_NAMES, make_scheduler
from repro.cluster.simulation import run_simulation
from repro.errors import TelemetryError
from repro.obs import (KNOWN_TRACE_NAMES, ColumnStore, Counter, Gauge,
                       Histogram, MetricRegistry, NULL_TRACER, RunLedger,
                       Telemetry, Tracer, config_sha256, deterministic_view,
                       read_manifests, read_trace, sanitize_run_id,
                       telemetry_directory, validate_manifest,
                       validate_trace_file, validate_trace_line)
from repro.perf import ExperimentRunner, RunSpec, clear_shared_cache


def tiny_config(seed=11, **overrides):
    config = paper_cluster_config(num_servers=6, grouping_value=22.0,
                                  seed=seed, **overrides)
    return config.replace(trace=TraceConfig(duration_hours=2.0))


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_shared_cache()
    yield
    clear_shared_cache()


class TestInstruments:
    def test_counter_monotonic(self):
        counter = Counter("events")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(TelemetryError):
            counter.inc(-1)

    def test_gauge_set_vs_callback(self):
        gauge = Gauge("direct")
        gauge.set(4.0)
        assert gauge.value == 4.0
        backed = Gauge("live", lambda: 9.0)
        assert backed.value == 9.0
        with pytest.raises(TelemetryError):
            backed.set(1.0)

    def test_histogram_buckets_and_summary(self):
        hist = Histogram("lat", bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(55.5)
        assert list(hist.bucket_counts) == [1, 1, 1]
        cols = hist.snapshot_columns()
        assert cols == {"lat.count": 3.0, "lat.sum": 55.5}

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(TelemetryError):
            Histogram("bad", bounds=(2.0, 1.0))


class TestRegistryAndStore:
    def test_snapshot_builds_columns(self):
        registry = MetricRegistry(capacity=4)
        counter = registry.counter("n")
        registry.gauge("g", lambda: 7.0)
        for tick in range(3):
            counter.inc()
            registry.snapshot_tick(60.0 * tick)
        cols = registry.columns()
        assert list(cols["time_s"]) == [0.0, 60.0, 120.0]
        assert list(cols["n"]) == [1.0, 2.0, 3.0]
        assert list(cols["g"]) == [7.0, 7.0, 7.0]

    def test_registration_frozen_after_first_snapshot(self):
        registry = MetricRegistry()
        registry.gauge("a", lambda: 1.0)
        registry.snapshot_tick(0.0)
        with pytest.raises(TelemetryError):
            registry.counter("late")

    def test_duplicate_names_rejected(self):
        registry = MetricRegistry()
        registry.counter("x")
        with pytest.raises(TelemetryError):
            registry.gauge("x")

    def test_store_grows_past_capacity_hint(self):
        store = ColumnStore(capacity=2)
        for i in range(5):
            store.append({"v": float(i)})
        assert store.num_rows == 5
        assert list(store.columns()["v"]) == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_npz_round_trip(self, tmp_path):
        registry = MetricRegistry(capacity=2)
        registry.gauge("g", lambda: 1.5)
        registry.snapshot_tick(0.0)
        path = registry.save_npz(tmp_path / "m.npz")
        loaded = np.load(path)
        assert list(loaded["g"]) == [1.5]


class TestTracer:
    def test_events_and_spans_round_trip(self, tmp_path):
        path = tmp_path / "t.trace.jsonl"
        tracer = Tracer(path, buffer_limit=2)
        tracer.event("fault-onset", 60.0, server=3, cause="scripted")
        tracer.span("tick", 60.0, 0.001, step=1)
        tracer.close()
        records = read_trace(path)
        assert [r["name"] for r in records] == ["fault-onset", "tick"]
        assert records[0]["kind"] == "event"
        assert records[0]["fields"] == {"server": 3, "cause": "scripted"}
        assert records[1]["kind"] == "span"
        assert records[1]["dur"] == pytest.approx(0.001)

    def test_disabled_tracer_is_free_and_writes_nothing(self, tmp_path):
        assert not NULL_TRACER.enabled
        NULL_TRACER.event("anything", 0.0)
        NULL_TRACER.span("anything", 0.0, 0.0)
        NULL_TRACER.close()
        assert os.listdir(tmp_path) == []

    def test_validator_rejects_malformed_lines(self):
        with pytest.raises(TelemetryError):
            validate_trace_line({"kind": "event", "name": "", "t": 0})
        with pytest.raises(TelemetryError):
            validate_trace_line({"kind": "span", "name": "tick", "t": 0})
        with pytest.raises(TelemetryError):
            validate_trace_line({"kind": "event", "name": "x", "t": -1})
        with pytest.raises(TelemetryError):
            validate_trace_line({"kind": "event", "name": "x", "t": 0,
                                 "bogus": 1})


class TestLedger:
    def test_record_read_and_validate(self, tmp_path):
        ledger = RunLedger(tmp_path)
        manifest = ledger.record(
            run_id="demo", scheduler="vmt-ta(gv=22)", policy="vmt-ta",
            config=tiny_config(), trace_sha256="ab" * 32,
            result_fingerprint="cd" * 8, ticks=120, wall_clock_s=1.25)
        validate_manifest(manifest)
        loaded = ledger.read("demo")
        assert deterministic_view(loaded) == deterministic_view(manifest)
        assert read_manifests(tmp_path) == [loaded]

    def test_config_hash_is_canonical(self):
        assert config_sha256(tiny_config()) == config_sha256(tiny_config())
        assert config_sha256(tiny_config()) != \
            config_sha256(tiny_config(seed=12))

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(TelemetryError):
            RunLedger(tmp_path).read("nope")


class TestTelemetryBundle:
    def test_lifecycle_and_artifacts(self, tmp_path):
        telemetry = Telemetry(tmp_path)
        assert not telemetry.bound
        telemetry.bind("My Run!", policy="vmt-ta", capacity=4)
        assert telemetry.run_id == sanitize_run_id("My Run!") == "My-Run"
        with pytest.raises(TelemetryError):
            telemetry.bind("again")

    def test_coerce_and_directory_helper(self, tmp_path):
        assert Telemetry.coerce(None) is None
        bundle = Telemetry.coerce(str(tmp_path))
        assert isinstance(bundle, Telemetry)
        assert Telemetry.coerce(bundle) is bundle
        assert telemetry_directory(None) is None
        assert telemetry_directory(str(tmp_path)) == str(tmp_path)
        with pytest.raises(TelemetryError):
            Telemetry.coerce(42)


class TestSimulationTelemetry:
    """The end-to-end contracts against real runs."""

    @pytest.mark.parametrize("policy", SCHEDULER_NAMES)
    def test_fingerprint_parity_with_telemetry(self, tmp_path, policy):
        config = tiny_config()
        silent = run_simulation(config, make_scheduler(policy, config))
        observed = run_simulation(config, make_scheduler(policy, config),
                                  telemetry=str(tmp_path))
        assert observed.fingerprint() == silent.fingerprint()

    def test_round_trip_artifacts_and_invariants(self, tmp_path):
        config = tiny_config()
        telemetry = Telemetry(tmp_path, "roundtrip")
        result = run_simulation(config,
                                make_scheduler("vmt-wa", config),
                                telemetry=telemetry)

        # Trace: every line validates; run bracketed; ticks complete.
        records = read_trace(telemetry.trace_path)
        assert validate_trace_file(telemetry.trace_path) == len(records)
        names = [r["name"] for r in records]
        assert names[0] == "run-start" and names[-1] == "run-end"
        assert set(names) <= set(KNOWN_TRACE_NAMES)
        ticks = [r for r in records if r["name"] == "tick"]
        assert len(ticks) == config.trace.num_steps
        assert records[-1]["fields"]["fingerprint"] == result.fingerprint()

        # Metrics: one row per tick, cluster power matches the result.
        metrics = np.load(telemetry.metrics_path)
        assert len(metrics["time_s"]) == config.trace.num_steps
        np.testing.assert_allclose(metrics["cluster.total_power_w"],
                                   result.it_power_w)

        # Manifest: validates and records the exact fingerprint.
        manifest = json.load(open(telemetry.manifest_path))
        validate_manifest(manifest)
        assert manifest["result_fingerprint"] == result.fingerprint()
        assert manifest["ticks"] == config.trace.num_steps

    def test_fault_events_reach_the_trace(self, tmp_path):
        from repro.faults import kill_servers
        config = tiny_config().replace(
            faults=kill_servers([2], 0.5, repair_after_hours=0.5))
        telemetry = Telemetry(tmp_path, "faulty")
        run_simulation(config, make_scheduler("round-robin", config),
                       telemetry=telemetry)
        names = [r["name"] for r in read_trace(telemetry.trace_path)]
        assert "fault-onset" in names
        assert "fault-recovery" in names

    def test_manifest_determinism_serial_vs_parallel(self, tmp_path):
        config = tiny_config()
        serial_dir, pool_dir = tmp_path / "serial", tmp_path / "pool"
        policies = ("vmt-ta", "round-robin")
        for workers, directory in ((1, serial_dir), (2, pool_dir)):
            clear_shared_cache()
            specs = [RunSpec(config, policy,
                             telemetry_dir=str(directory))
                     for policy in policies]
            ExperimentRunner(max_workers=workers).run(specs)
        serial = [deterministic_view(m)
                  for m in read_manifests(serial_dir)]
        pooled = [deterministic_view(m) for m in read_manifests(pool_dir)]
        assert serial == pooled
        assert len(serial) == len(policies)

    def test_telemetry_bundle_cannot_be_reused(self, tmp_path):
        config = tiny_config()
        telemetry = Telemetry(tmp_path)
        run_simulation(config, make_scheduler("vmt-ta", config),
                       telemetry=telemetry)
        with pytest.raises(TelemetryError):
            run_simulation(config, make_scheduler("vmt-ta", config),
                           telemetry=telemetry)

"""Unit and property tests for the enthalpy-method PCM model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import WaxConfig
from repro.errors import ThermalModelError
from repro.thermal.pcm import PCMBank

WAX = WaxConfig()


def make_bank(n=4, temp=20.0, wax=WAX):
    return PCMBank(wax, n, initial_temp_c=temp)


class TestEnthalpyCurve:
    def test_initial_state_matches_temperature(self):
        bank = make_bank(temp=25.0)
        assert np.allclose(bank.temperature_c, 25.0)
        assert np.allclose(bank.melt_fraction, 0.0)

    def test_temperature_pinned_through_melt_band(self):
        bank = make_bank(n=1)
        for fraction in (0.1, 0.5, 0.9):
            bank.set_melt_fraction(fraction)
            assert bank.temperature_c[0] == pytest.approx(WAX.melt_temp_c)
            assert bank.melt_fraction[0] == pytest.approx(fraction)

    def test_fully_melted_above_melt_temp(self):
        bank = make_bank(n=1, temp=45.0)
        assert bank.melt_fraction[0] == pytest.approx(1.0)
        assert bank.temperature_c[0] == pytest.approx(45.0)

    def test_initialized_exactly_at_melt_point_is_solid(self):
        """The ambiguous T == PMT input pins the solidus convention."""
        bank = make_bank(n=3, temp=WAX.melt_temp_c)
        assert np.all(bank.melt_fraction == 0.0)
        assert np.allclose(bank.temperature_c, WAX.melt_temp_c)
        assert np.all(bank.stored_latent_j == 0.0)

    def test_fully_melted_gauge_uses_tolerance(self):
        """One-ulp-below-1.0 fractions still count as fully melted."""
        from repro.obs import MetricRegistry
        from repro.thermal.pcm import FULL_MELT_TOLERANCE

        bank = make_bank(n=4)
        registry = MetricRegistry(capacity=4)
        bank.register_metrics(registry)
        gauge = registry.get("pcm.fully_melted_servers")
        bank.set_melt_fraction(1.0 - 1e-12)  # inside the tolerance
        assert gauge.value == 4.0
        bank.set_melt_fraction(1.0 - 10 * FULL_MELT_TOLERANCE)
        assert gauge.value == 0.0

    @given(st.floats(min_value=-10.0, max_value=80.0))
    @settings(max_examples=60, deadline=None)
    def test_property_temperature_enthalpy_round_trip(self, temp):
        bank = make_bank(n=1, temp=temp)
        assert bank.temperature_c[0] == pytest.approx(temp, abs=1e-9)

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_property_melt_fraction_round_trip(self, fraction):
        bank = make_bank(n=1)
        bank.set_melt_fraction(fraction)
        assert bank.melt_fraction[0] == pytest.approx(fraction, abs=1e-12)


class TestDynamics:
    def test_heating_below_melt_raises_temperature_without_melting(self):
        bank = make_bank(n=1, temp=20.0)
        q = bank.step(t_air_c=30.0, ha_w_per_k=14.0, dt_s=600.0)
        assert 20.0 < bank.temperature_c[0] < 30.0
        assert bank.melt_fraction[0] == 0.0
        assert q[0] > 0.0

    def test_sustained_heat_above_melt_point_melts_wax(self):
        bank = make_bank(n=1, temp=35.0)
        for __ in range(600):  # 10 hours of hot air
            bank.step(t_air_c=40.0, ha_w_per_k=14.0, dt_s=60.0)
        assert bank.melt_fraction[0] > 0.5

    def test_cooling_refreezes_and_releases_heat(self):
        bank = make_bank(n=1)
        bank.set_melt_fraction(1.0)
        q = bank.step(t_air_c=25.0, ha_w_per_k=14.0, dt_s=60.0)
        assert q[0] < 0.0
        for __ in range(1200):
            bank.step(t_air_c=25.0, ha_w_per_k=14.0, dt_s=60.0)
        assert bank.melt_fraction[0] == pytest.approx(0.0)

    def test_energy_conservation_over_step(self):
        bank = make_bank(n=1, temp=34.0)
        q = bank.step(t_air_c=42.0, ha_w_per_k=14.0, dt_s=60.0)
        # Absorbed power * dt must equal the enthalpy gained.
        stored_before = 0.0
        e_latent = bank.stored_latent_j[0]
        # Enthalpy change = latent + sensible; reconstruct sensible:
        cp_s = WAX.specific_heat_solid_j_per_kg_k
        sensible = (bank.temperature_c[0] - 34.0) * cp_s * WAX.mass_kg
        assert q[0] * 60.0 == pytest.approx(
            e_latent - stored_before + sensible, rel=1e-6)

    def test_equilibrium_with_air_absorbs_nothing(self):
        bank = make_bank(n=1, temp=30.0)
        q = bank.step(t_air_c=30.0, ha_w_per_k=14.0, dt_s=60.0)
        assert q[0] == pytest.approx(0.0, abs=1e-9)

    def test_zero_coupling_is_inert(self):
        bank = make_bank(n=2, temp=20.0)
        q = bank.step(t_air_c=50.0, ha_w_per_k=0.0, dt_s=60.0)
        assert np.allclose(q, 0.0)
        assert np.allclose(bank.temperature_c, 20.0)

    def test_zero_mass_wax_is_inert(self):
        empty = WaxConfig(volume_liters=0.0)
        bank = PCMBank(empty, 2, initial_temp_c=20.0)
        q = bank.step(t_air_c=50.0, ha_w_per_k=14.0, dt_s=60.0)
        assert np.allclose(q, 0.0)

    def test_vector_of_air_temperatures(self):
        bank = make_bank(n=3, temp=35.0)
        q = bank.step(t_air_c=np.array([30.0, 35.0, 40.0]),
                      ha_w_per_k=14.0, dt_s=60.0)
        assert q[0] < 0 or bank.temperature_c[0] < 35.0
        assert q[2] > 0.0

    def test_large_timestep_remains_stable(self):
        # Sub-stepping must keep the explicit update from overshooting.
        bank = make_bank(n=1, temp=20.0)
        bank.step(t_air_c=30.0, ha_w_per_k=500.0, dt_s=3600.0)
        assert bank.temperature_c[0] == pytest.approx(30.0, abs=0.5)

    @given(st.floats(min_value=15.0, max_value=55.0),
           st.floats(min_value=15.0, max_value=55.0))
    @settings(max_examples=40, deadline=None)
    def test_property_temperature_moves_toward_air(self, start, air):
        bank = make_bank(n=1, temp=start)
        before = bank.temperature_c[0]
        bank.step(t_air_c=air, ha_w_per_k=14.0, dt_s=60.0)
        after = bank.temperature_c[0]
        if air > start:
            assert after >= before - 1e-9
        else:
            assert after <= before + 1e-9

    @given(st.floats(min_value=10.0, max_value=60.0))
    @settings(max_examples=40, deadline=None)
    def test_property_melt_fraction_stays_in_bounds(self, air):
        bank = make_bank(n=1, temp=30.0)
        for __ in range(20):
            bank.step(t_air_c=air, ha_w_per_k=14.0, dt_s=300.0)
        assert 0.0 <= bank.melt_fraction[0] <= 1.0


class TestValidation:
    def test_rejects_zero_servers(self):
        with pytest.raises(ThermalModelError):
            PCMBank(WAX, 0)

    def test_rejects_nonpositive_dt(self):
        with pytest.raises(ThermalModelError):
            make_bank().step(40.0, 14.0, 0.0)

    def test_rejects_negative_ha(self):
        with pytest.raises(ThermalModelError):
            make_bank().step(40.0, -1.0, 60.0)

    def test_reset_restores_temperature(self):
        bank = make_bank(n=2, temp=20.0)
        bank.step(50.0, 14.0, 3600.0)
        bank.reset(22.0)
        assert np.allclose(bank.temperature_c, 22.0)

    def test_snapshot_is_immutable_copy(self):
        bank = make_bank(n=2, temp=20.0)
        snap = bank.snapshot()
        bank.step(50.0, 14.0, 3600.0)
        assert np.allclose(snap.temperature_c, 20.0)

"""Backend equivalence: ``backend="fast"`` is bit-identical, and engages.

The fast tick engine's contract is exact: same RNG stream consumption,
same IEEE-754 operation order per element, same recorded series as the
reference event-engine loop.  ``SimulationResult.fingerprint()`` (the
golden-trace hash) is the oracle throughout, so any single-bit drift in
any recorded series fails these tests.

The suite also pins *dispatch*: clean VMT-TA runs must take the planned
whole-run kernel, other clean runs the stepped driver, and fault/
telemetry runs must fall back to the reference engine -- otherwise a
silently-ineligible fast path would pass equivalence while delivering
no speedup.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.analysis.sweep import gv_sweep
from repro.cluster.simulation import ClusterSimulation, run_simulation
from repro.config import (CoolingFaultSpec, FaultConfig, SensorFaultSpec,
                          ServerFaultSpec, TraceConfig,
                          paper_cluster_config)
from repro.core.policies import SCHEDULER_NAMES, make_scheduler
from repro.kernel import is_numba_available, resolve_backend
from repro.errors import ConfigurationError
from repro.scenarios import get_scenario
from repro.state.checkpoint import (latest_checkpoint, restore_simulation,
                                    verify_roundtrip)

NUM_SERVERS = 24
HOURS = 6.0
SEED = 7

#: A mid-trace mix exercising displacement, repair, derating, and a
#: stuck wax sensor -- enough to perturb every scheduler's decisions.
FAULTS = FaultConfig(
    enabled=True,
    server_faults=(ServerFaultSpec(time_s=3600.0, server_id=3,
                                   repair_after_s=7200.0),),
    cooling_faults=(CoolingFaultSpec(time_s=2 * 3600.0,
                                     capacity_factor=0.7,
                                     restore_after_s=3600.0),),
    sensor_faults=(SensorFaultSpec(time_s=3600.0, server_id=5,
                                   sensor="wax", mode="stuck"),),
)


def small_config(faults: bool = False):
    config = paper_cluster_config(num_servers=NUM_SERVERS, seed=SEED)
    config = config.replace(trace=TraceConfig(duration_hours=HOURS))
    if faults:
        config = dataclasses.replace(config, faults=FAULTS)
    return config


def run_backend(config, policy: str, backend: str):
    """One run; returns (result, simulation) so tests can read state."""
    sim = ClusterSimulation(config, make_scheduler(policy, config),
                            record_heatmaps=False, backend=backend)
    return sim.run(), sim


def assert_state_trees_equal(expected, got, path="state"):
    """Bit-exact recursive comparison of two snapshot state trees."""
    if isinstance(expected, np.ndarray):
        got = np.asarray(got)
        assert expected.dtype == got.dtype, path
        equal_nan = np.issubdtype(expected.dtype, np.floating)
        assert np.array_equal(expected, got, equal_nan=equal_nan), path
    elif isinstance(expected, dict):
        assert set(expected) == set(got), path
        for key in expected:
            assert_state_trees_equal(expected[key], got[key],
                                     f"{path}.{key}")
    elif isinstance(expected, (list, tuple)):
        assert len(expected) == len(got), path
        for i, (a, b) in enumerate(zip(expected, got)):
            assert_state_trees_equal(a, b, f"{path}[{i}]")
    elif isinstance(expected, float):
        assert expected == got or (np.isnan(expected)
                                   and np.isnan(got)), path
    else:
        assert expected == got, path


class TestBitIdentity:
    @pytest.mark.parametrize("faults", (False, True),
                             ids=("clean", "faults"))
    @pytest.mark.parametrize("policy", SCHEDULER_NAMES)
    def test_fast_matches_reference(self, policy, faults):
        config = small_config(faults)
        ref, _ = run_backend(config, policy, "reference")
        fast, _ = run_backend(config, policy, "fast")
        assert ref.fingerprint() == fast.fingerprint()

    @pytest.mark.parametrize("name", ("heat-wave", "sensor-fault-storm"))
    def test_library_scenarios_match(self, name):
        spec = get_scenario(name).with_overrides(
            num_servers=NUM_SERVERS, duration_hours=HOURS, seed=SEED)
        config = spec.compile()
        ref, _ = run_backend(config, "vmt-wa", "reference")
        fast, _ = run_backend(config, "vmt-wa", "fast")
        assert ref.fingerprint() == fast.fingerprint()

    def test_post_run_state_parity(self):
        """Beyond the recorded series: the live simulation state (wax
        enthalpy, air temps, estimator, RNG positions) must also agree,
        or a later resume from the fast run would diverge."""
        config = small_config()
        _, ref_sim = run_backend(config, "vmt-ta", "reference")
        _, fast_sim = run_backend(config, "vmt-ta", "fast")
        assert ref_sim.kernel_path == "reference"
        assert fast_sim.kernel_path == "planned"
        ref_snap = ref_sim.snapshot()
        fast_snap = fast_sim.snapshot()
        assert ref_snap.tick == fast_snap.tick
        assert_state_trees_equal(ref_snap.state, fast_snap.state)


class TestDispatch:
    def test_clean_vmt_ta_takes_the_planned_kernel(self):
        _, sim = run_backend(small_config(), "vmt-ta", "fast")
        assert sim.kernel_path == "planned"

    @pytest.mark.parametrize("policy", ("round-robin", "coolest-first",
                                        "vmt-preserve", "vmt-wa"))
    def test_other_clean_policies_take_the_stepped_driver(self, policy):
        _, sim = run_backend(small_config(), policy, "fast")
        assert sim.kernel_path == "stepped"

    def test_fault_runs_fall_back_to_the_engine(self):
        _, sim = run_backend(small_config(faults=True), "vmt-ta", "fast")
        assert sim.kernel_path == "reference"

    def test_reference_backend_never_dispatches_kernels(self):
        _, sim = run_backend(small_config(), "vmt-ta", "reference")
        assert sim.kernel_path == "reference"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_backend("vectorized")

    def test_env_variable_is_the_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend(None) == "reference"
        monkeypatch.setenv("REPRO_BACKEND", "fast")
        assert resolve_backend(None) == "fast"
        assert resolve_backend("reference") == "reference"


class TestCheckpointRoundtrip:
    def test_roundtrip_through_the_fast_backend(self, tmp_path):
        """Checkpoint mid-run under the fast backend, resume under the
        fast backend, and compare against a straight reference run --
        the PR 5 oracle, now crossing both engines."""
        config = small_config()
        straight = run_simulation(config,
                                  make_scheduler("vmt-ta", config),
                                  record_heatmaps=False,
                                  backend="reference")
        partial = ClusterSimulation(config,
                                    make_scheduler("vmt-ta", config),
                                    record_heatmaps=False, backend="fast",
                                    checkpoint_every=100,
                                    checkpoint_dir=str(tmp_path))
        partial.run()
        path = latest_checkpoint(str(tmp_path))
        assert path is not None
        resumed_sim = restore_simulation(path, backend="fast")
        resumed = resumed_sim.run()
        verify_roundtrip(straight, resumed)

    def test_cross_backend_checkpoint_resume(self, tmp_path):
        """A run checkpointed under reference resumes bit-identically
        under fast (and the restored run engages a kernel)."""
        config = small_config()
        straight = run_simulation(config,
                                  make_scheduler("vmt-ta", config),
                                  record_heatmaps=False,
                                  backend="fast")
        ClusterSimulation(config, make_scheduler("vmt-ta", config),
                          record_heatmaps=False, backend="reference",
                          checkpoint_every=150,
                          checkpoint_dir=str(tmp_path)).run()
        resumed_sim = restore_simulation(
            latest_checkpoint(str(tmp_path)), backend="fast")
        resumed = resumed_sim.run()
        assert resumed_sim.kernel_path == "stepped"
        verify_roundtrip(straight, resumed)


class TestParallelModes:
    def test_thread_mode_fast_sweep_matches_serial_reference(self):
        gvs = (18.0, 22.0)
        serial = gv_sweep(gvs, num_servers=NUM_SERVERS, seed=SEED,
                          max_workers=1, backend="reference")
        threaded = gv_sweep(gvs, num_servers=NUM_SERVERS, seed=SEED,
                            max_workers=2, workers_mode="thread",
                            backend="fast")
        for policy in serial.reductions:
            assert (serial.reductions[policy] ==
                    threaded.reductions[policy]).all()


@pytest.mark.skipif(not is_numba_available(),
                    reason="numba not installed; the python spelling of "
                           "the fused physics loop is already covered")
class TestNumbaKernel:
    def test_njit_physics_matches_reference(self):
        config = small_config()
        ref, _ = run_backend(config, "vmt-ta", "reference")
        fast, sim = run_backend(config, "vmt-ta", "fast")
        assert sim.kernel_path == "planned"
        assert ref.fingerprint() == fast.fingerprint()

"""Tests for the experiment registry and its CLI surface."""

import pytest

from repro.analysis.registry import (EXPERIMENTS, get_experiment,
                                     list_experiments)
from repro.cli import main
from repro.errors import ConfigurationError


class TestRegistry:
    def test_covers_every_paper_artifact(self):
        expected = {"fig1", "fig6", "fig7", "fig8", "fig9", "fig10",
                    "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
                    "fig17", "fig18", "fig19", "fig20", "table1",
                    "table2", "tco"}
        assert set(EXPERIMENTS) == expected

    def test_lookup_and_error(self):
        assert get_experiment("fig13").paper_ref == "Fig. 13"
        with pytest.raises(ConfigurationError):
            get_experiment("fig99")

    def test_filter_by_kind(self):
        model_only = list_experiments(simulated=False)
        assert {e.id for e in model_only} == {"fig1", "fig6", "fig7",
                                              "fig8", "table1"}
        assert len(list_experiments()) == 19

    def test_run_with_override(self):
        result = get_experiment("fig9").run(num_servers=15)
        assert result.config.num_servers == 15

    def test_model_experiments_run_instantly(self):
        for exp_id in ("fig6", "fig7", "table1"):
            assert get_experiment(exp_id).run() is not None


class TestExperimentsCLI:
    def test_list(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out and "Table II" in out

    def test_run_model_experiment(self, capsys):
        assert main(["experiments", "fig7"]) == 0
        out = capsys.readouterr().out
        assert "done:" in out

    def test_run_simulated_with_size_override(self, capsys):
        assert main(["experiments", "fig9", "--servers", "12"]) == 0
        out = capsys.readouterr().out
        assert "num_servers: 12" in out

    def test_unknown_id_fails_cleanly(self, capsys):
        assert main(["experiments", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

"""Smoke tests: every example script runs and prints sane output.

Examples are the library's front door; broken examples are broken docs.
Each runs in a subprocess exactly as a user would invoke it, with a small
cluster argument where supported to keep runtime low.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=300):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart_reports_reduction():
    out = run_example("quickstart.py", "30")
    assert "round-robin" in out
    assert "vmt-ta" in out
    assert "%" in out


def test_gv_sweep_reports_best_settings():
    out = run_example("gv_sweep.py", "20")
    assert "Best VMT-TA" in out and "Best VMT-WA" in out
    assert "GV=" in out


def test_capacity_planning_reports_savings():
    out = run_example("capacity_planning.py", "30")
    assert "Option A" in out and "Option B" in out
    assert "$" in out
    assert "25 MW" in out


def test_reliability_rotation_reports_gap():
    out = run_example("reliability_rotation.py")
    assert "round robin" in out
    assert "rotation" in out.lower()


def test_thermal_heatmap_renders(tmp_path):
    out = run_example("thermal_heatmap.py", "round-robin")
    assert "Air temperature" in out or "air temperature" in out.lower()
    assert "wax" in out.lower()


def test_mix_advisor_lists_regions():
    out = run_example("mix_advisor.py")
    assert "Needs VMT" in out
    assert "VMT/TTS" in out
    assert "Mix" in out


def test_energy_bill_reports_savings():
    out = run_example("energy_bill.py", "20")
    assert "chiller plant" in out
    assert "savings over two days" in out


def test_datacenter_stagger_reports_peaks():
    out = run_example("datacenter_stagger.py", "15", "2")
    assert "aggregate peak" in out
    assert "stagger" in out


def test_day_ahead_planning_verifies_plan():
    out = run_example("day_ahead_planning.py", "20")
    assert "planner (VMT-WA)" in out
    assert "best swept GV" in out

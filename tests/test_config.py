"""Unit tests for the configuration dataclasses."""

import dataclasses

import pytest

from repro.config import (SchedulerConfig, ServerConfig, SimulationConfig,
                          ThermalConfig, TraceConfig, WaxConfig,
                          paper_cluster_config)
from repro.errors import ConfigurationError


class TestServerConfig:
    def test_defaults_match_paper(self):
        server = ServerConfig()
        assert server.sockets == 4
        assert server.cores_per_socket == 8
        assert server.cores == 32
        assert server.idle_power_w == 100.0
        assert server.peak_power_w == 500.0

    def test_validate_rejects_zero_cores(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(sockets=0).validate()

    def test_validate_rejects_peak_below_idle(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(idle_power_w=300, peak_power_w=200).validate()

    def test_validate_rejects_negative_idle(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(idle_power_w=-1).validate()


class TestWaxConfig:
    def test_defaults_match_paper(self):
        wax = WaxConfig()
        assert wax.volume_liters == 4.0
        assert wax.melt_temp_c == 35.7

    def test_mass_from_volume_and_density(self):
        wax = WaxConfig(volume_liters=4.0, density_kg_per_m3=880.0)
        assert wax.mass_kg == pytest.approx(3.52)

    def test_latent_capacity(self):
        wax = WaxConfig(volume_liters=1.0, density_kg_per_m3=1000.0,
                        latent_heat_j_per_kg=100e3)
        assert wax.latent_capacity_j == pytest.approx(100e3)

    def test_scaled_latent(self):
        wax = WaxConfig()
        half = wax.scaled_latent(0.5)
        assert half.latent_heat_j_per_kg == pytest.approx(
            wax.latent_heat_j_per_kg / 2)
        # Original unchanged (frozen dataclass semantics).
        assert wax.latent_heat_j_per_kg == WaxConfig().latent_heat_j_per_kg

    def test_scaled_latent_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            WaxConfig().scaled_latent(-0.1)

    def test_with_melt_temp(self):
        wax = WaxConfig().with_melt_temp(30.0)
        assert wax.melt_temp_c == 30.0

    def test_validate_rejects_bad_density(self):
        with pytest.raises(ConfigurationError):
            WaxConfig(density_kg_per_m3=0).validate()


class TestThermalConfig:
    def test_validate_rejects_nonpositive_resistance(self):
        with pytest.raises(ConfigurationError):
            ThermalConfig(r_air_c_per_w=0).validate()

    def test_validate_rejects_negative_stdev(self):
        with pytest.raises(ConfigurationError):
            ThermalConfig(inlet_stdev_c=-1).validate()

    def test_validate_accepts_defaults(self):
        ThermalConfig().validate()


class TestTraceConfig:
    def test_num_steps(self):
        trace = TraceConfig(duration_hours=48.0, step_seconds=60.0)
        assert trace.num_steps == 2880

    def test_validate_rejects_trough_above_peak(self):
        with pytest.raises(ConfigurationError):
            TraceConfig(peak_utilization=0.5,
                        trough_utilization=0.6).validate()

    def test_validate_rejects_zero_duration(self):
        with pytest.raises(ConfigurationError):
            TraceConfig(duration_hours=0).validate()


class TestSchedulerConfig:
    def test_defaults(self):
        sched = SchedulerConfig()
        assert sched.grouping_value == 22.0
        assert sched.wax_threshold == 0.98

    @pytest.mark.parametrize("threshold", [0.0, -0.1, 1.5])
    def test_validate_rejects_bad_threshold(self, threshold):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(wax_threshold=threshold).validate()


class TestSimulationConfig:
    def test_total_cores(self):
        config = SimulationConfig(num_servers=10)
        assert config.total_cores == 320

    def test_validate_tree(self):
        SimulationConfig().validate()

    def test_validate_rejects_empty_cluster(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(num_servers=0).validate()

    def test_round_trip_via_dict(self):
        config = paper_cluster_config(num_servers=250, grouping_value=24.0,
                                      seed=99, inlet_stdev_c=1.5)
        rebuilt = SimulationConfig.from_dict(config.to_dict())
        assert rebuilt == config

    def test_replace_preserves_other_fields(self):
        config = SimulationConfig()
        changed = config.replace(num_servers=7)
        assert changed.num_servers == 7
        assert changed.wax == config.wax


class TestPaperClusterConfig:
    def test_builds_1000_server_cluster_by_default(self):
        config = paper_cluster_config()
        assert config.num_servers == 1000
        config.validate()

    def test_passes_through_parameters(self):
        config = paper_cluster_config(num_servers=100, grouping_value=24,
                                      inlet_stdev_c=2.0, wax_threshold=0.9)
        assert config.scheduler.grouping_value == 24
        assert config.thermal.inlet_stdev_c == 2.0
        assert config.scheduler.wax_threshold == 0.9

"""Unit tests for sensible storage and the latent-vs-sensible comparison."""

import numpy as np
import pytest

from repro.config import WaxConfig
from repro.errors import ThermalModelError
from repro.thermal.materials import WATER
from repro.thermal.pcm import PCMBank
from repro.thermal.sensible import (SensibleStorageBank,
                                    water_tank_equivalent)


class TestSensibleStorageBank:
    def test_relaxes_exponentially_toward_air(self):
        bank = water_tank_equivalent(4.0, 1, initial_temp_c=20.0)
        q = bank.step(40.0, 14.0, 600.0)
        assert 20.0 < bank.temperature_c[0] < 40.0
        assert q[0] > 0

    def test_stable_for_any_timestep(self):
        bank = water_tank_equivalent(4.0, 1, initial_temp_c=20.0)
        bank.step(40.0, 14.0, 1e9)
        assert bank.temperature_c[0] == pytest.approx(40.0)

    def test_energy_conservation(self):
        bank = water_tank_equivalent(4.0, 1, initial_temp_c=20.0)
        q = bank.step(40.0, 14.0, 60.0)
        stored = bank.stored_energy_j(20.0)[0]
        assert q[0] * 60.0 == pytest.approx(stored, rel=1e-9)

    def test_release_when_air_cools(self):
        bank = water_tank_equivalent(4.0, 1, initial_temp_c=38.0)
        q = bank.step(25.0, 14.0, 60.0)
        assert q[0] < 0

    def test_usable_capacity(self):
        bank = water_tank_equivalent(4.0, 1)
        # 4 kg of water across a 6-degree band: 4 * 4186 * 6 J.
        assert bank.usable_capacity_j(30.0, 36.0) == pytest.approx(
            4.0 * 4186.0 * 6.0)

    def test_validation(self):
        with pytest.raises(ThermalModelError):
            SensibleStorageBank(WATER, 1.0, 0)
        with pytest.raises(ThermalModelError):
            SensibleStorageBank(WATER, -1.0, 1)
        bank = water_tank_equivalent(4.0, 1)
        with pytest.raises(ThermalModelError):
            bank.step(30.0, 14.0, 0.0)
        with pytest.raises(ThermalModelError):
            bank.usable_capacity_j(36.0, 30.0)

    def test_reset(self):
        bank = water_tank_equivalent(4.0, 2, initial_temp_c=35.0)
        bank.reset(22.0)
        assert np.allclose(bank.temperature_c, 22.0)


class TestLatentVsSensible:
    def test_wax_stores_several_times_more_in_the_usable_band(self):
        """Section II: sensible storage 'typically stores several times
        less energy than the phase transition' over a server's usable
        temperature band."""
        wax = WaxConfig()
        water = water_tank_equivalent(wax.volume_liters, 1)
        band = (30.0, 36.0)  # trough exhaust to just past the melt point
        sensible = water.usable_capacity_j(*band)
        latent = wax.latent_capacity_j
        assert latent > 3.0 * sensible

    def test_same_hot_window_melts_wax_but_only_warms_water(self):
        wax_bank = PCMBank(WaxConfig(), 1, initial_temp_c=30.0)
        water = water_tank_equivalent(4.0, 1, initial_temp_c=30.0)
        absorbed_wax = absorbed_water = 0.0
        for __ in range(6 * 60):  # six hot hours at 39 C air
            absorbed_wax += wax_bank.step(39.0, 14.0, 60.0)[0] * 60.0
            absorbed_water += water.step(39.0, 14.0, 60.0)[0] * 60.0
        # Water equilibrates quickly and stops absorbing; wax keeps
        # swallowing heat at the pinned melt temperature.
        assert absorbed_wax > 2.0 * absorbed_water
        assert water.temperature_c[0] == pytest.approx(39.0, abs=0.1)
        assert 0.1 < wax_bank.melt_fraction[0] <= 1.0

"""Scenario engine: specs, library, verifier teeth, suite resilience.

Covers the four contracts the scenario layer makes:

* **determinism** -- equal specs compile to equal configs and equal run
  fingerprints, and the spec's canonical SHA-256 is stable;
* **compilation semantics** -- demand overlays, ambient profiles, and
  fault scripts land in the config tree exactly as declared, and the
  scenarios-off path stays bit-identical to a plain config;
* **verifier teeth** -- every registered metamorphic check fires on a
  deliberately tampered result (a checker that cannot fail checks
  nothing);
* **fault-tolerant execution** -- a SIGKILLed worker, a hung run, or a
  failing scenario produces structured rows, never an aborted suite.
"""

from __future__ import annotations

import dataclasses
import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (AmbientConfig, AmbientEventSpec, DemandEventSpec,
                          FaultConfig, ServerFaultSpec, SimulationConfig,
                          TraceConfig, _ramp_weight)
from repro.errors import ConfigurationError
from repro.faults.scenarios import (cooling_derate, kill_servers,
                                    merge_scenarios, temperature_hazard)
from repro.perf.runner import (ExperimentRunner, RunFailure, RunSpec,
                               RunTimeout)
from repro.scenarios import (SCENARIO_LIBRARY, ScenarioSpec, get_scenario,
                             run_suite, scenario_names, verify_scenario)
from repro.scenarios.spec import _cap_concurrent_downtime
from repro.scenarios.verifier import CHECK_REGISTRY
from repro.workloads.trace import TwoDayTrace, apply_demand_overlay


def tiny_spec(name="tiny", **overrides):
    fields = dict(name=name, num_servers=10, duration_hours=3.0, seed=5)
    fields.update(overrides)
    return ScenarioSpec(**fields)


def run_pair(spec, policy="vmt-ta"):
    runner = ExperimentRunner(max_workers=1)
    result = runner.run_one(RunSpec(config=spec.compile(), policy=policy))
    baseline = runner.run_one(RunSpec(config=spec.baseline(),
                                      policy=policy))
    return result, baseline


class TestDemandOverlay:
    def test_empty_overlay_returns_the_same_array(self):
        util = np.linspace(0.1, 0.9, 50)
        assert apply_demand_overlay(util, util * 0, ()) is util

    def test_surge_raises_only_inside_the_window(self):
        times_h = np.linspace(0.0, 10.0, 200)
        util = np.full_like(times_h, 0.5)
        event = DemandEventSpec(kind="surge", start_hour=4.0,
                                end_hour=6.0, magnitude=1.4,
                                ramp_hours=0.5)
        out = apply_demand_overlay(util, times_h, (event,))
        # full strength inside [start, end]; linear ramps extend half an
        # hour before/after; zero beyond the ramps
        inside = (times_h >= 4.0) & (times_h <= 6.0)
        outside = (times_h <= 3.5) | (times_h >= 6.5)
        assert np.allclose(out[inside], 0.7)
        assert np.allclose(out[outside], 0.5)
        assert np.all(out >= 0.5 - 1e-12)

    def test_curtail_caps_and_never_raises(self):
        times_h = np.linspace(0.0, 10.0, 400)
        util = 0.5 + 0.4 * np.sin(times_h)
        event = DemandEventSpec(kind="curtail", start_hour=2.0,
                                end_hour=8.0, magnitude=0.3,
                                ramp_hours=1.0)
        out = apply_demand_overlay(util, times_h, (event,))
        assert np.all(out <= util + 1e-12)
        fully_on = (times_h >= 2.0) & (times_h <= 8.0)
        assert np.all(out[fully_on] <= 0.3 + 1e-12)

    def test_overlay_output_stays_in_unit_interval(self):
        times_h = np.linspace(0.0, 24.0, 500)
        util = np.clip(0.6 + 0.5 * np.sin(times_h), 0.0, 1.0)
        events = (
            DemandEventSpec(kind="surge", start_hour=1.0, end_hour=23.0,
                            magnitude=3.0),
            DemandEventSpec(kind="curtail", start_hour=5.0,
                            end_hour=9.0, magnitude=0.0),
        )
        out = apply_demand_overlay(util, times_h, events)
        assert np.all(out >= 0.0) and np.all(out <= 1.0)

    def test_overlay_changes_the_generated_trace(self):
        base = TraceConfig(duration_hours=6.0)
        overlaid = dataclasses.replace(base, overlay=(
            DemandEventSpec(kind="surge", start_hour=1.0, end_hour=5.0,
                            magnitude=1.5),))
        plain = TwoDayTrace(base).generate(8, 32)
        surged = TwoDayTrace(overlaid).generate(8, 32)
        assert surged.utilization().sum() > plain.utilization().sum()

    @given(hour=st.floats(-5.0, 30.0), start=st.floats(0.0, 24.0),
           width=st.floats(0.1, 10.0), ramp=st.floats(0.0, 4.0))
    @settings(max_examples=60, deadline=None)
    def test_ramp_weight_bounded_and_zero_beyond_ramps(self, hour, start,
                                                       width, ramp):
        weight = _ramp_weight(hour, start, start + width, ramp)
        assert 0.0 <= weight <= 1.0
        if hour <= start - ramp or hour >= start + width + ramp:
            assert weight == 0.0
        if start < hour < start + width:
            assert weight == 1.0


class TestAmbientConfig:
    def test_inactive_by_default(self):
        assert not AmbientConfig().is_active
        assert AmbientConfig().offset_c_at(12 * 3600.0) == 0.0

    def test_diurnal_peaks_at_the_peak_hour(self):
        ambient = AmbientConfig(diurnal_amplitude_c=5.0,
                                diurnal_peak_hour=15.0)
        peak = ambient.offset_c_at(15 * 3600.0)
        trough = ambient.offset_c_at(3 * 3600.0)
        assert peak == pytest.approx(5.0)
        assert trough == pytest.approx(-5.0)

    def test_event_offset_adds_to_diurnal(self):
        ambient = AmbientConfig(
            diurnal_amplitude_c=3.0, diurnal_peak_hour=15.0,
            events=(AmbientEventSpec(start_hour=12.0, end_hour=18.0,
                                     delta_c=8.0, ramp_hours=1.0),))
        assert ambient.offset_c_at(15 * 3600.0) == pytest.approx(11.0)

    def test_config_round_trips_with_ambient_and_overlay(self):
        config = SimulationConfig(
            num_servers=8,
            trace=TraceConfig(duration_hours=4.0, overlay=(
                DemandEventSpec(kind="curtail", start_hour=1.0,
                                end_hour=2.0, magnitude=0.5),)),
            ambient=AmbientConfig(diurnal_amplitude_c=2.0))
        assert SimulationConfig.from_dict(config.to_dict()) == config

    def test_ambient_off_is_bit_identical_to_plain_config(self):
        plain = SimulationConfig(
            num_servers=10, seed=5,
            trace=TraceConfig(duration_hours=3.0))
        explicit = dataclasses.replace(plain, ambient=AmbientConfig())
        runner = ExperimentRunner(max_workers=1)
        a = runner.run_one(RunSpec(config=plain, policy="vmt-ta"))
        b = runner.run_one(RunSpec(config=explicit, policy="vmt-ta"))
        assert a.fingerprint() == b.fingerprint()


class TestScenarioSpec:
    def test_library_has_at_least_eight_scenarios(self):
        assert len(SCENARIO_LIBRARY) >= 8
        assert scenario_names() == list(SCENARIO_LIBRARY)

    def test_every_library_scenario_compiles_and_validates(self):
        for spec in SCENARIO_LIBRARY.values():
            compiled = spec.compile()
            compiled.validate()
            assert spec.checks, spec.name
            for key in spec.checks:
                assert key in CHECK_REGISTRY, (spec.name, key)

    def test_unknown_scenario_is_a_config_error(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            get_scenario("no-such-thing")

    def test_bad_name_rejected(self):
        with pytest.raises(ConfigurationError, match="kebab-case"):
            ScenarioSpec(name="Not Valid").validate()

    def test_equal_specs_compile_to_equal_configs(self):
        a = tiny_spec(ambient=AmbientConfig(diurnal_amplitude_c=4.0))
        b = tiny_spec(ambient=AmbientConfig(diurnal_amplitude_c=4.0))
        assert a.compile() == b.compile()
        assert a.sha256() == b.sha256()

    def test_sha_changes_when_the_spec_changes(self):
        assert tiny_spec().sha256() != tiny_spec(seed=6).sha256()
        assert tiny_spec().sha256() != tiny_spec(
            demand_events=(DemandEventSpec(kind="surge", start_hour=1.0,
                                           end_hour=2.0,
                                           magnitude=1.2),)).sha256()

    def test_sha_is_canonical_json(self):
        spec = get_scenario("heat-wave")
        canonical = json.dumps(spec.to_dict(), sort_keys=True,
                               separators=(",", ":"), default=str)
        import hashlib
        assert spec.sha256() == hashlib.sha256(
            canonical.encode()).hexdigest()

    def test_same_spec_same_run_fingerprint(self):
        spec = tiny_spec(demand_events=(
            DemandEventSpec(kind="surge", start_hour=1.0, end_hour=2.5,
                            magnitude=1.3),))
        runner = ExperimentRunner(max_workers=1)
        a = runner.run_one(RunSpec(config=spec.compile(),
                                   policy="vmt-wa"))
        b = runner.run_one(RunSpec(config=spec.compile(),
                                   policy="vmt-wa"))
        assert a.fingerprint() == b.fingerprint()

    def test_baseline_strips_every_stress_layer(self):
        spec = get_scenario("heat-wave").with_overrides(
            num_servers=10, duration_hours=3.0)
        baseline = spec.baseline()
        assert not baseline.ambient.is_active
        assert baseline.trace.overlay == ()
        assert not baseline.faults.enabled
        # ... but keeps the cluster identity.
        assert baseline.num_servers == spec.compile().num_servers
        assert baseline.seed == spec.compile().seed

    def test_with_overrides_rescales_without_mutating(self):
        original = get_scenario("rolling-maintenance")
        scaled = original.with_overrides(num_servers=12,
                                         duration_hours=6.0, seed=2)
        assert original.num_servers is None
        assert scaled.compile().num_servers == 12
        assert scaled.compile().trace.duration_hours == 6.0

    def test_reduced_scale_drops_out_of_range_fault_targets(self):
        spec = get_scenario("correlated-rack-failure").with_overrides(
            num_servers=12)
        compiled = spec.compile()
        ids = {f.server_id for f in compiled.faults.server_faults}
        assert ids and max(ids) < 12
        # concurrency cap: at most a third of the fleet down at once
        assert len(ids) <= max(1, 12 // 3)

    def test_cap_concurrent_downtime_keeps_disjoint_waves(self):
        waves = tuple(ServerFaultSpec(time_s=h * 3600.0, server_id=i,
                                      repair_after_s=3600.0)
                      for h, i in ((1.0, 0), (3.0, 1), (5.0, 2)))
        assert _cap_concurrent_downtime(waves, 1) == waves

    def test_cap_concurrent_downtime_caps_overlap(self):
        rack = tuple(ServerFaultSpec(time_s=3600.0, server_id=i,
                                     repair_after_s=3600.0)
                     for i in range(6))
        kept = _cap_concurrent_downtime(rack, 2)
        assert len(kept) == 2
        assert [f.server_id for f in kept] == [0, 1]


class TestVerifierTeeth:
    """Each metamorphic check must fire on a tampered result."""

    @pytest.fixture(scope="class")
    def heat_pair(self):
        spec = get_scenario("heat-wave").with_overrides(
            num_servers=10, duration_hours=6.0, seed=5)
        return (spec,) + run_pair(spec)

    def test_untampered_heat_wave_passes(self, heat_pair):
        spec, result, baseline = heat_pair
        outcomes = verify_scenario(spec, result, baseline,
                                   policy="vmt-ta")
        assert outcomes and all(o.passed for o in outcomes)

    def test_peak_temp_check_fires(self, heat_pair):
        spec, result, baseline = heat_pair
        cold = dataclasses.replace(result,
                                   mean_temp_c=result.mean_temp_c - 50.0)
        outcomes = verify_scenario(spec, cold, baseline)
        failed = {o.check for o in outcomes if not o.passed}
        assert "ambient-never-lowers-peak-temp" in failed

    def test_melt_check_fires(self, heat_pair):
        spec, result, baseline = heat_pair
        frozen = dataclasses.replace(
            result, mean_melt_fraction=result.mean_melt_fraction * 0.0)
        hot_base = dataclasses.replace(
            baseline,
            mean_melt_fraction=baseline.mean_melt_fraction * 0.0 + 0.5)
        outcomes = verify_scenario(spec, frozen, hot_base)
        failed = {o.check for o in outcomes if not o.passed}
        assert "ambient-never-reduces-melt" in failed

    def test_sane_series_check_fires_on_nan(self, heat_pair):
        spec, result, baseline = heat_pair
        poisoned = dataclasses.replace(
            result, cooling_load_w=result.cooling_load_w + np.nan)
        outcomes = verify_scenario(spec, poisoned, baseline)
        failed = {o.check for o in outcomes if not o.passed}
        assert "sane-series" in failed

    def test_curtail_check_fires_when_energy_rises(self):
        spec = get_scenario("demand-response-curtailment")\
            .with_overrides(num_servers=10, duration_hours=6.0, seed=5)
        result, baseline = run_pair(spec)
        greedy = dataclasses.replace(result,
                                     it_power_w=result.it_power_w * 2.0)
        outcomes = verify_scenario(spec, greedy, baseline)
        failed = {o.check for o in outcomes if not o.passed}
        assert "curtail-never-raises-it-energy" in failed
        clean = verify_scenario(spec, result, baseline)
        assert all(o.passed for o in clean)

    def test_surge_check_fires_when_energy_drops(self):
        spec = get_scenario("black-friday-surge").with_overrides(
            num_servers=10, duration_hours=6.0, seed=5)
        result, baseline = run_pair(spec)
        lazy = dataclasses.replace(result,
                                   it_power_w=result.it_power_w * 0.1)
        outcomes = verify_scenario(spec, lazy, baseline)
        failed = {o.check for o in outcomes if not o.passed}
        assert "surge-never-lowers-it-energy" in failed

    def test_availability_check_fires_when_faults_do_not_bite(self):
        spec = get_scenario("rolling-maintenance").with_overrides(
            num_servers=12, duration_hours=6.0, seed=5)
        result, baseline = run_pair(spec)
        ghost = dataclasses.replace(
            result, availability=result.availability * 0.0 + 1.0)
        outcomes = verify_scenario(spec, ghost, baseline)
        failed = {o.check for o in outcomes if not o.passed}
        assert "faults-never-raise-availability" in failed
        clean = verify_scenario(spec, result, baseline)
        assert all(o.passed for o in clean)

    def test_unknown_check_key_is_a_config_error(self, heat_pair):
        spec, result, baseline = heat_pair
        bogus = dataclasses.replace(spec, checks=("no-such-check",))
        with pytest.raises(ConfigurationError, match="unknown check"):
            verify_scenario(bogus, result, baseline)


class TestMergeScenariosPessimism:
    """merge_scenarios must keep the most pessimistic scalar settings."""

    configs = st.builds(
        FaultConfig,
        enabled=st.booleans(),
        hazard_failures=st.booleans(),
        hazard_acceleration=st.floats(0.0, 1e4),
        mtbf_hours=st.floats(1.0, 1e6),
        repair_time_s=st.floats(1.0, 1e6),
        auto_repair=st.booleans(),
        derate_inlet_rise_c=st.floats(0.0, 20.0),
    )

    @given(st.lists(configs, min_size=1, max_size=4))
    @settings(max_examples=80, deadline=None)
    def test_scalars_take_the_worst_case(self, parts):
        merged = merge_scenarios(*parts)
        assert merged.enabled == any(p.enabled for p in parts)
        assert merged.hazard_failures == any(p.hazard_failures
                                             for p in parts)
        assert merged.hazard_acceleration == max(p.hazard_acceleration
                                                 for p in parts)
        assert merged.mtbf_hours == min(p.mtbf_hours for p in parts)
        assert merged.repair_time_s == max(p.repair_time_s for p in parts)
        assert merged.auto_repair == all(p.auto_repair for p in parts)
        assert merged.derate_inlet_rise_c == max(p.derate_inlet_rise_c
                                                 for p in parts)

    @given(st.lists(configs, min_size=2, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_scalar_merge_is_order_insensitive(self, parts):
        forward = merge_scenarios(*parts)
        backward = merge_scenarios(*reversed(parts))
        for name in ("enabled", "hazard_failures", "hazard_acceleration",
                     "mtbf_hours", "repair_time_s", "auto_repair",
                     "derate_inlet_rise_c"):
            assert getattr(forward, name) == getattr(backward, name), name

    def test_events_concatenate(self):
        a = kill_servers([0, 1], 2.0)
        b = cooling_derate(0.5, 4.0)
        c = temperature_hazard(100.0, repair_time_hours=9.0,
                               auto_repair=False)
        merged = merge_scenarios(a, b, c)
        assert len(merged.server_faults) == 2
        assert len(merged.cooling_faults) == 1
        assert merged.repair_time_s == 9.0 * 3600.0
        assert merged.auto_repair is False


class TestSuiteExecution:
    SMALL = dict(num_servers=10, duration_hours=3.0, seed=5)

    def test_suite_runs_verifies_and_ranks(self):
        report = run_suite(scenarios=["heat-wave", "black-friday-surge"],
                           policies=["vmt-ta", "round-robin"],
                           max_workers=1, **self.SMALL)
        assert len(report.records) == 4
        assert report.passed
        assert {r.policy for r in report.rankings} == {"vmt-ta",
                                                       "round-robin"}
        text = report.to_text()
        assert "policy ranking" in text and "0 check violations" in text

    def test_failed_scenario_is_a_structured_row_not_an_abort(self):
        # A ten-day trace cannot finish inside a 1-second budget, so
        # the doomed scenario's runs become RunFailure rows while the
        # short heat wave still completes and verifies.
        doomed = tiny_spec(name="doomed", duration_hours=240.0)
        heat = get_scenario("heat-wave").with_overrides(**self.SMALL)
        report = run_suite(scenarios=[doomed, heat],
                           policies=["vmt-ta"], max_workers=1,
                           timeout_s=1.0)
        assert len(report.records) == 2
        doomed_row = next(r for r in report.records
                          if r.scenario == "doomed")
        heat_row = next(r for r in report.records
                        if r.scenario == "heat-wave")
        assert not doomed_row.completed
        assert isinstance(doomed_row.failure, RunFailure)
        assert doomed_row.failure.error_type == "RunTimeout"
        assert heat_row.completed and not heat_row.violations
        # the doomed baseline also timed out, structured as well
        assert report.baseline_failures
        assert not report.passed

    def test_timeout_becomes_a_structured_failure(self):
        spec = tiny_spec()
        runner = ExperimentRunner(max_workers=1)
        outcome = runner.run(
            [RunSpec(config=spec.compile(), policy="vmt-ta",
                     label="hung", timeout_s=0.01)],
            raise_on_error=False)[0]
        assert isinstance(outcome, RunFailure)
        assert outcome.error_type == "RunTimeout"
        assert outcome.attempts == 1

    def test_deadline_is_cooperative_not_signal_based(self):
        # The old SIGALRM scheme only fired on the main thread; the
        # cooperative Deadline must work anywhere and leave signal
        # handlers untouched.
        import signal
        import time as _time
        from repro.perf.runner import Deadline
        before = signal.getsignal(signal.SIGALRM)
        deadline = Deadline.of(30.0)
        assert deadline is not None
        deadline.check()  # within budget: no-op
        assert deadline.remaining_s() > 0 and not deadline.expired()
        assert Deadline.of(None) is None
        assert Deadline.of(0) is None
        expired = Deadline(1e-9)
        _time.sleep(0.002)
        assert expired.expired()
        with pytest.raises(RunTimeout):
            expired.check()
        assert signal.getsignal(signal.SIGALRM) == before
        assert signal.getitimer(signal.ITIMER_REAL)[0] == 0.0

    def test_runtimeout_is_a_simulation_error(self):
        from repro.errors import SimulationError
        assert issubclass(RunTimeout, SimulationError)


class TestKilledWorkerRecovery:
    def _specs(self):
        spec = tiny_spec()
        config = spec.compile()
        return [RunSpec(config=config, policy=policy, label=policy)
                for policy in ("round-robin", "vmt-ta", "coolest-first")]

    def test_sigkilled_worker_triggers_serial_retry(self, monkeypatch):
        specs = self._specs()
        monkeypatch.setenv("REPRO_KILL_RUN", "vmt-ta")
        outcomes = ExperimentRunner(max_workers=2).run(
            specs, raise_on_error=False)
        assert all(not isinstance(o, RunFailure) for o in outcomes)
        monkeypatch.delenv("REPRO_KILL_RUN")
        clean = ExperimentRunner(max_workers=1).run(specs)
        for recovered, reference in zip(outcomes, clean):
            assert recovered.fingerprint() == reference.fingerprint()

    def test_job_failing_after_pool_crash_reports_two_attempts(
            self, monkeypatch):
        # The victim both SIGKILLs its worker *and* fails legitimately
        # on the serial retry (a ten-day trace against a 1-second
        # budget), so the bounded retry is exercised end to end:
        # crash -> retry -> fail.
        doomed = tiny_spec(name="doomed-victim", duration_hours=240.0)
        specs = [RunSpec(config=doomed.compile(), policy="vmt-ta",
                         label="victim", timeout_s=1.0),
                 RunSpec(config=tiny_spec().compile(),
                         policy="round-robin", label="bystander")]
        monkeypatch.setenv("REPRO_KILL_RUN", "victim")
        outcomes = ExperimentRunner(max_workers=2).run(
            specs, raise_on_error=False)
        victim, bystander = outcomes
        assert isinstance(victim, RunFailure)
        assert victim.attempts == 2
        assert not isinstance(bystander, RunFailure)

    def test_kill_hook_is_inert_in_the_parent_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_KILL_RUN", "victim")
        spec = RunSpec(config=tiny_spec().compile(), policy="vmt-ta",
                       label="victim")
        result = ExperimentRunner(max_workers=1).run_one(spec)
        assert result.fingerprint()


class TestScenarioProvenance:
    def test_manifest_records_scenario_and_sha(self, tmp_path):
        spec = get_scenario("black-friday-surge").with_overrides(
            num_servers=10, duration_hours=3.0, seed=5)
        run_spec = RunSpec(config=spec.compile(), policy="vmt-wa",
                           label="bf:vmt-wa", scenario=spec.name,
                           scenario_sha256=spec.sha256(),
                           telemetry_dir=str(tmp_path))
        ExperimentRunner(max_workers=1).run([run_spec])
        manifests = [f for f in os.listdir(tmp_path)
                     if f.endswith(".manifest.json")]
        assert len(manifests) == 1
        with open(tmp_path / manifests[0]) as handle:
            manifest = json.load(handle)
        assert manifest["scenario"] == "black-friday-surge"
        assert manifest["scenario_sha256"] == spec.sha256()

    def test_manifest_still_validates_with_scenario_keys(self, tmp_path):
        from repro.obs.ledger import read_manifests
        spec = get_scenario("heat-wave").with_overrides(
            num_servers=10, duration_hours=3.0, seed=5)
        ExperimentRunner(max_workers=1).run(
            [RunSpec(config=spec.compile(), policy="vmt-ta",
                     label="hw", scenario=spec.name,
                     scenario_sha256=spec.sha256(),
                     telemetry_dir=str(tmp_path))])
        manifests = read_manifests(str(tmp_path))
        assert len(manifests) == 1 and manifests[0]["scenario"] \
            == "heat-wave"

    def test_extra_keys_cannot_shadow_the_schema(self, tmp_path):
        from repro.errors import TelemetryError
        from repro.obs.ledger import RunLedger
        from repro.config import paper_cluster_config
        ledger = RunLedger(str(tmp_path))
        with pytest.raises(TelemetryError, match="shadow"):
            ledger.record(run_id="r", scheduler="s", policy="p",
                          config=paper_cluster_config(num_servers=4),
                          trace_sha256="t", result_fingerprint="f",
                          ticks=1, wall_clock_s=0.0,
                          extra={"policy": "evil"})


class TestCliScenario:
    def test_scenario_list(self, capsys):
        from repro.cli import main
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_scenario_run_verifies(self, capsys):
        from repro.cli import main
        code = main(["scenario", "run", "black-friday-surge",
                     "--servers", "10", "--hours", "3", "--seed", "5",
                     "--policy", "vmt-ta"])
        out = capsys.readouterr().out
        assert code == 0
        assert "[PASS]" in out and "spec sha256" in out

    def test_scenario_suite_exit_code_clean(self, capsys):
        from repro.cli import main
        code = main(["scenario", "suite", "--scenarios", "heat-wave",
                     "--policies", "vmt-ta", "--servers", "10",
                     "--hours", "3", "--seed", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "policy ranking" in out

    def test_unknown_scenario_exits_with_error(self, capsys):
        from repro.cli import main
        assert main(["scenario", "run", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

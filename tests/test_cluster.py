"""Unit tests for the vectorized cluster and its scheduler view."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.state import ClusterView
from repro.config import SimulationConfig, ThermalConfig
from repro.errors import CapacityError, SimulationError
from repro.workloads.workload import WORKLOAD_LIST

CONFIG = SimulationConfig(num_servers=5)
NUM_W = len(WORKLOAD_LIST)


def allocation_with(cores_per_server, workload_index=0, n=5):
    allocation = np.zeros((n, NUM_W), dtype=np.int64)
    allocation[:, workload_index] = cores_per_server
    return allocation


class TestClusterStep:
    def test_idle_cluster_draws_idle_power(self):
        cluster = Cluster(CONFIG)
        summary = cluster.step(np.zeros((5, NUM_W), dtype=int), 60.0)
        assert summary["power_w"] == pytest.approx(500.0)
        assert summary["cooling_load_w"] == pytest.approx(
            summary["power_w"] - summary["wax_absorption_w"])

    def test_power_follows_allocation(self):
        cluster = Cluster(CONFIG)
        # 8 cores of WebSearch per server: 100 + 8*4.65 = 137.2 W each.
        summary = cluster.step(allocation_with(8, 0), 60.0)
        assert summary["power_w"] == pytest.approx(5 * 137.2)

    def test_air_temperature_rises_under_load(self):
        cluster = Cluster(CONFIG)
        before = cluster.air_temp_c.copy()
        for __ in range(30):
            cluster.step(allocation_with(32, 2), 60.0)  # video encoding
        assert np.all(cluster.air_temp_c > before)

    def test_sustained_hot_load_melts_wax_and_absorbs_heat(self):
        cluster = Cluster(CONFIG)
        for __ in range(240):
            summary = cluster.step(allocation_with(32, 2), 60.0)
        assert np.all(cluster.wax_melt_fraction > 0.1)
        assert summary["wax_absorption_w"] > 0.0

    def test_cooling_load_equals_power_minus_absorption(self):
        cluster = Cluster(CONFIG)
        for __ in range(60):
            summary = cluster.step(allocation_with(32, 2), 60.0)
        assert summary["cooling_load_w"] == pytest.approx(
            summary["power_w"] - summary["wax_absorption_w"])

    def test_time_advances(self):
        cluster = Cluster(CONFIG)
        cluster.step(np.zeros((5, NUM_W), dtype=int), 60.0)
        cluster.step(np.zeros((5, NUM_W), dtype=int), 60.0)
        assert cluster.time_s == pytest.approx(120.0)

    def test_rejects_wrong_allocation_shape(self):
        cluster = Cluster(CONFIG)
        with pytest.raises(SimulationError):
            cluster.step(np.zeros((4, NUM_W), dtype=int), 60.0)

    def test_rejects_over_capacity_server(self):
        cluster = Cluster(CONFIG)
        with pytest.raises(CapacityError):
            cluster.step(allocation_with(33), 60.0)

    def test_rejects_negative_allocation(self):
        cluster = Cluster(CONFIG)
        bad = np.zeros((5, NUM_W), dtype=int)
        bad[0, 0] = -1
        with pytest.raises(SimulationError):
            cluster.step(bad, 60.0)

    def test_rejects_nonpositive_dt(self):
        cluster = Cluster(CONFIG)
        with pytest.raises(SimulationError):
            cluster.step(np.zeros((5, NUM_W), dtype=int), 0.0)

    def test_deterministic_given_seed(self):
        a = Cluster(CONFIG)
        b = Cluster(CONFIG)
        for __ in range(10):
            a.step(allocation_with(16, 0), 60.0)
            b.step(allocation_with(16, 0), 60.0)
        assert np.array_equal(a.air_temp_c, b.air_temp_c)
        assert np.array_equal(a.wax_melt_fraction, b.wax_melt_fraction)

    def test_inlet_variation_spreads_temperatures(self):
        config = SimulationConfig(
            num_servers=50, thermal=ThermalConfig(inlet_stdev_c=2.0))
        cluster = Cluster(config)
        assert cluster.inlet_temp_c.std() > 0.5


class TestClusterView:
    def test_view_exposes_estimates_not_truth(self):
        cluster = Cluster(CONFIG)
        for __ in range(120):
            cluster.step(allocation_with(32, 2), 60.0)
        view = cluster.view()
        assert isinstance(view, ClusterView)
        assert view.num_servers == 5
        assert view.melt_temp_c == pytest.approx(35.7)
        # Estimates track truth but come from the estimator pipeline.
        assert np.all(view.wax_melt_estimate >= 0.0)
        assert np.all(view.wax_melt_estimate <= 1.0)

    def test_view_helpers(self):
        view = ClusterView(
            time_s=0.0, num_servers=3, cores_per_server=32,
            air_temp_c=np.array([30.0, 36.0, 40.0]),
            wax_melt_estimate=np.array([0.0, 0.5, 0.99]),
            melt_temp_c=35.7)
        assert list(view.servers_below_melt()) == [True, False, False]
        assert list(view.servers_melted(0.98)) == [False, False, True]
        assert view.total_cores == 96

    def test_estimator_correction_anchors_at_boundaries(self):
        """While the wax is fully solid the estimate is re-anchored to 0."""
        cluster = Cluster(CONFIG)
        for __ in range(30):
            cluster.step(np.zeros((5, NUM_W), dtype=int), 60.0)
        assert np.all(cluster.view().wax_melt_estimate == 0.0)

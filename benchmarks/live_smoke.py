#!/usr/bin/env python3
"""CI smoke test for the live streaming subsystem (``repro.live``).

Exercises both public entry points end to end at reduced scale:

1. **CLI.**  Run ``repro-sim live`` over a short seeded synthetic feed
   with the last-value forecaster and assert a clean exit, a parseable
   ``--report`` JSON, and the expected step count.
2. **Serve.**  Spawn a real server subprocess, POST /v1/live, drain the
   SSE stream while the run is in flight, and validate every span frame
   against the trace-line schema (``repro.obs.schema``); the terminal
   frame must be ``done`` with kind ``live``.
3. **Timeout.**  POST /v1/live with an absurdly small ``timeout_s`` on
   a long feed and assert the job fails *cleanly* with ``RunTimeout``
   -- the cooperative deadline, not SIGALRM, so it must work inside the
   server's worker threads.

Usage::

    PYTHONPATH=src python benchmarks/live_smoke.py [--servers N]
        [--hours H]
"""

import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class Client:
    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.base_url = f"http://{host}:{port}"

    def get(self, path: str):
        with urllib.request.urlopen(self.base_url + path,
                                    timeout=60) as response:
            return response.status, json.loads(response.read())

    def post(self, path: str, payload: dict):
        request = urllib.request.Request(
            self.base_url + path, data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())

    def wait_healthy(self, timeout_s: float = 30.0) -> None:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            try:
                status, _ = self.get("/v1/healthz")
                if status == 200:
                    return
            except (urllib.error.URLError, ConnectionError):
                time.sleep(0.1)
        raise RuntimeError("server never became healthy")

    def await_job(self, job_id: str, timeout_s: float = 300.0) -> dict:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            _, job = self.get(f"/v1/runs/{job_id}")
            if job["status"] in ("done", "failed"):
                return job
            time.sleep(0.2)
        raise RuntimeError(f"job {job_id} did not settle")

    def drain_sse(self, path: str, timeout_s: float = 120.0) -> str:
        conn = socket.create_connection((self.host, self.port),
                                        timeout=timeout_s)
        try:
            conn.sendall(f"GET {path} HTTP/1.1\r\n"
                         f"Host: {self.host}\r\n\r\n".encode())
            chunks = []
            deadline = time.monotonic() + timeout_s
            while time.monotonic() < deadline:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        finally:
            conn.close()
        raw = b"".join(chunks)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"text/event-stream" in head, head
        return body.decode("utf-8")


def parse_sse(body: str):
    """[(event_name, data), ...] from a drained SSE body."""
    frames = []
    name, data = None, []
    for line in body.splitlines():
        if line.startswith("event:"):
            name = line.split(":", 1)[1].strip()
        elif line.startswith("data:"):
            data.append(line.split(":", 1)[1].strip())
        elif not line.strip() and name is not None:
            frames.append((name, "\n".join(data)))
            name, data = None, []
    return frames


def start_server(data_dir: str, port: int) -> subprocess.Popen:
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--data-dir", data_dir,
         "--port", str(port)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)


def cli_phase(servers: int, hours: float, tmp: str) -> int:
    """Phase 1: ``repro-sim live`` over a synthetic feed."""
    report_path = os.path.join(tmp, "live-report.json")
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "live", "vmt-ta",
         "--servers", str(servers), "--hours", str(hours),
         "--feed", "synthetic", "--feed-seed", "3",
         "--forecaster", "last-value", "--decision-every", "10",
         "--report", report_path],
        env=env, capture_output=True, text=True, timeout=300)
    steps = round(hours * 60)
    ok = proc.returncode == 0 and os.path.exists(report_path)
    if ok:
        with open(report_path) as handle:
            report = json.load(handle)
        ok = (report.get("schema") == "repro.live/1"
              and report.get("steps_ingested") == steps
              and report.get("forecaster") == "last-value"
              and report.get("result", {}).get("fingerprint"))
    print(f"cli live: rc={proc.returncode} report={ok and 'valid' or 'BAD'} "
          f"-> {'OK' if ok else 'FAIL'}")
    if not ok:
        sys.stdout.write(proc.stdout[-2000:] + proc.stderr[-2000:])
    return not ok


def serve_phase(client: Client, servers: int, hours: float) -> int:
    """Phase 2: POST /v1/live, SSE span schema, done frame."""
    from repro.obs.schema import validate_trace_line

    payload = {"policy": "vmt-ta", "num_servers": servers,
               "duration_hours": hours, "seed": 11,
               "feed": "synthetic", "feed_seed": 3,
               "forecaster": "last-value", "decision_every": 10}
    status, body = client.post("/v1/live", payload)
    assert status == 202, status
    job_id = body["job"]["id"]
    events = parse_sse(client.drain_sse(f"/v1/runs/{job_id}/events"))
    names = [name for name, _ in events]
    spans = [data for name, data in events if name == "span"]
    failures = 0
    for line in spans:
        validate_trace_line(json.loads(line))
    ok = (names and names[0] == "status" and names[-1] == "done"
          and len(spans) > 0)
    final = json.loads(events[-1][1]) if events else {}
    ok = (ok and final.get("kind") == "live"
          and final.get("status") == "done"
          and final.get("fingerprint"))
    print(f"serve live: {len(spans)} schema-valid spans, terminal "
          f"{names[-1] if names else '?'} kind={final.get('kind')} "
          f"-> {'OK' if ok else 'FAIL'}")
    failures += not ok

    job = client.await_job(job_id)
    ok = (job["status"] == "done"
          and job["sim_ticks_executed"] == round(hours * 60))
    print(f"serve live job: status={job['status']} "
          f"ticks={job['sim_ticks_executed']} -> {'OK' if ok else 'FAIL'}")
    failures += not ok
    return failures


def timeout_phase(client: Client) -> int:
    """Phase 3: the cooperative deadline fires inside a worker thread."""
    payload = {"policy": "vmt-ta", "num_servers": 20,
               "duration_hours": 240.0, "seed": 5,
               "feed": "synthetic", "timeout_s": 0.05}
    status, body = client.post("/v1/live", payload)
    assert status == 202, status
    job = client.await_job(body["job"]["id"])
    ok = (job["status"] == "failed" and job["error"]
          and job["error"].startswith("RunTimeout"))
    print(f"timeout: status={job['status']} error={job['error']!r:.80} "
          f"-> {'OK' if ok else 'FAIL'}")
    return not ok


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--servers", type=int, default=6)
    parser.add_argument("--hours", type=float, default=1.0)
    args = parser.parse_args()

    failures = 0
    tmp = tempfile.mkdtemp(prefix="live-smoke-")
    failures += cli_phase(args.servers, args.hours, tmp)

    port = free_port()
    server = start_server(os.path.join(tmp, "state"), port)
    client = Client("127.0.0.1", port)
    try:
        client.wait_healthy()
        failures += serve_phase(client, args.servers, args.hours)
        failures += timeout_phase(client)
    finally:
        server.terminate()
        try:
            server.wait(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()

    print("live smoke:", "PASS" if failures == 0 else
          f"FAIL ({failures})")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""CI smoke test for the HTTP job server (``repro.serve``).

Drives a real server *subprocess* over real sockets and asserts the
serving contract end to end:

1. **Fresh run.**  POST a reduced-scale run, poll to completion, and
   assert its fingerprint is bit-identical to a direct ``api.run`` of
   the same configuration in this process.
2. **Registry hit.**  POST the identical request again and assert it is
   served from the content-addressed registry: ``cached: true``, zero
   simulation ticks, same fingerprint, manifest provenance attached.
3. **SIGKILL and resume.**  POST a checkpointed run, SIGKILL the server
   once a checkpoint exists on disk, restart it over the same data
   directory, and assert the recovered job completes with the correct
   fingerprint (resumed, not restarted: the pre-kill checkpoint is
   load-bearing).
4. **Leaderboard** (optional, ``--leaderboard``).  GET /v1/leaderboard,
   wait for the suite job, and assert every requested policy is ranked
   and the second GET is a cache hit.

Usage::

    python benchmarks/serve_smoke.py [--servers N] [--hours H]
        [--kill-servers N] [--kill-hours H] [--leaderboard]
"""

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class Client:
    def __init__(self, base_url: str) -> None:
        self.base_url = base_url

    def get(self, path: str):
        with urllib.request.urlopen(self.base_url + path,
                                    timeout=60) as response:
            return response.status, json.loads(response.read())

    def post(self, path: str, payload: dict):
        request = urllib.request.Request(
            self.base_url + path, data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())

    def wait_healthy(self, timeout_s: float = 30.0) -> None:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            try:
                status, _ = self.get("/v1/healthz")
                if status == 200:
                    return
            except (urllib.error.URLError, ConnectionError):
                time.sleep(0.1)
        raise RuntimeError("server never became healthy")

    def await_job(self, job_id: str, timeout_s: float = 600.0) -> dict:
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            _, job = self.get(f"/v1/runs/{job_id}")
            if job["status"] in ("done", "failed"):
                return job
            time.sleep(0.2)
        raise RuntimeError(f"job {job_id} did not settle")


def start_server(data_dir: str, port: int) -> subprocess.Popen:
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--data-dir", data_dir,
         "--port", str(port)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    return process


def direct_fingerprint(servers: int, hours: float, seed: int,
                       policy: str) -> str:
    import dataclasses
    from repro import api, paper_cluster_config
    from repro.perf import clear_shared_cache
    clear_shared_cache()
    base = paper_cluster_config(num_servers=servers, grouping_value=22.0,
                                seed=seed)
    config = base.replace(
        trace=dataclasses.replace(base.trace, duration_hours=hours))
    return api.run(policy=policy, config=config).fingerprint()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--servers", type=int, default=8)
    parser.add_argument("--hours", type=float, default=4.0)
    parser.add_argument("--kill-servers", type=int, default=40,
                        help="cluster size for the SIGKILL-and-resume "
                             "phase (must run long enough to checkpoint)")
    parser.add_argument("--kill-hours", type=float, default=24.0)
    parser.add_argument("--leaderboard", action="store_true",
                        help="also exercise /v1/leaderboard (reduced "
                             "scale, all five policies)")
    args = parser.parse_args()

    failures = 0
    tmp = tempfile.mkdtemp(prefix="serve-smoke-")
    data_dir = os.path.join(tmp, "state")
    port = free_port()
    server = start_server(data_dir, port)
    client = Client(f"http://127.0.0.1:{port}")
    try:
        client.wait_healthy()
        run_request = {"policy": "vmt-ta", "num_servers": args.servers,
                       "duration_hours": args.hours, "seed": 11}

        # Phase 1: fresh run, fingerprint parity with direct api.run.
        _, body = client.post("/v1/runs", run_request)
        first = client.await_job(body["job"]["id"])
        direct = direct_fingerprint(args.servers, args.hours, 11,
                                    "vmt-ta")
        ok = (first["status"] == "done" and first["cached"] is False
              and first["fingerprint"] == direct)
        print(f"fresh run: status={first['status']} "
              f"cached={first['cached']} fp={first['fingerprint']} "
              f"direct={direct} -> {'OK' if ok else 'FAIL'}")
        failures += not ok

        # Phase 2: identical POST is a labeled registry hit.
        _, body = client.post("/v1/runs", run_request)
        second = client.await_job(body["job"]["id"])
        ok = (second["status"] == "done" and second["cached"] is True
              and second["sim_ticks_executed"] == 0
              and second["fingerprint"] == first["fingerprint"]
              and second["manifest"]
              and second["manifest"].endswith(".manifest.json"))
        print(f"registry hit: cached={second['cached']} "
              f"ticks={second['sim_ticks_executed']} "
              f"manifest={second['manifest']} "
              f"-> {'OK' if ok else 'FAIL'}")
        failures += not ok

        # Phase 3: SIGKILL mid-run, restart, recovered job resumes.
        kill_request = {"policy": "vmt-wa",
                        "num_servers": args.kill_servers,
                        "duration_hours": args.kill_hours, "seed": 23,
                        "checkpoint_every": 60}
        _, body = client.post("/v1/runs", kill_request)
        kill_job = body["job"]["id"]
        checkpoint_dir = os.path.join(data_dir, "checkpoints", kill_job)
        deadline = time.monotonic() + 300.0
        while time.monotonic() < deadline:
            snapshots = (os.listdir(checkpoint_dir)
                         if os.path.isdir(checkpoint_dir) else [])
            if snapshots:
                break
            _, job = client.get(f"/v1/runs/{kill_job}")
            if job["status"] in ("done", "failed"):
                break
            time.sleep(0.2)
        _, job = client.get(f"/v1/runs/{kill_job}")
        if job["status"] == "done":
            print("kill phase: run finished before SIGKILL -- scale up "
                  "--kill-servers/--kill-hours for a sharper test; "
                  "treating as soft pass")
        else:
            if not snapshots:
                print("kill phase: FAIL -- no checkpoint appeared "
                      "before the deadline")
                failures += 1
            server.send_signal(signal.SIGKILL)
            server.wait(timeout=30)
            print(f"SIGKILLed server with job {kill_job} in flight "
                  f"({len(snapshots)} checkpoint(s) on disk)")
            server = start_server(data_dir, port)
            client.wait_healthy()
            recovered = client.await_job(kill_job)
            direct = direct_fingerprint(args.kill_servers,
                                        args.kill_hours, 23, "vmt-wa")
            ok = (recovered["status"] == "done"
                  and recovered["fingerprint"] == direct)
            print(f"recovered job: status={recovered['status']} "
                  f"fp={recovered['fingerprint']} direct={direct} "
                  f"-> {'OK' if ok else 'FAIL'}")
            failures += not ok

        # Phase 4 (optional): the policy leaderboard.
        if args.leaderboard:
            query = (f"/v1/leaderboard?num_servers={args.servers}"
                     f"&duration_hours={args.hours:g}&seed=11")
            status, body = client.get(query)
            if status == 202:
                board_job = client.await_job(body["job"]["id"],
                                             timeout_s=1800.0)
                if board_job["status"] != "done":
                    print(f"leaderboard job FAILED: {board_job['error']}")
                    failures += 1
                status, body = client.get(query)
            ok = (status == 200
                  and body.get("schema") == "repro.leaderboard/1"
                  and body.get("cached") is True
                  and len(body.get("policies_ranked", [])) == 5)
            print(f"leaderboard: status={status} "
                  f"ranked={body.get('policies_ranked')} "
                  f"-> {'OK' if ok else 'FAIL'}")
            failures += not ok
    finally:
        if server.poll() is None:
            server.terminate()
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:
                server.kill()
        output = server.stdout.read().decode(errors="replace")
        if output.strip():
            print("--- server output ---")
            print(output)

    if failures:
        print(f"\nFAILED: {failures} serve smoke phase(s) failed")
        return 1
    print("\nserve smoke OK: fresh run matches direct api.run, repeat "
          "is a labeled registry hit, SIGKILLed job recovered")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 10: coolest-first heatmaps -- tighter temperatures, still no melt.

Paper: coolest-first "maintains a much tighter temperature distribution
between servers" than round robin, but similarly melts no significant
wax.
"""

import numpy as np
from paper_reference import emit, once

from repro.analysis.experiments import heatmap_experiment
from repro.analysis.reporting import format_heatmap


def bench_fig10_coolest_first_heatmap(benchmark, capsys):
    result = once(benchmark, lambda: heatmap_experiment("coolest-first"))
    baseline = heatmap_experiment("round-robin")

    peak_tick = int(np.argmax(baseline.cooling_load_w))
    cf_spread = float(result.temp_heatmap[peak_tick].std())
    rr_spread = float(baseline.temp_heatmap[peak_tick].std())
    emit(capsys,
         format_heatmap(result.temp_heatmap,
                        title="Fig. 10a: air temperature, coolest first",
                        vmin=10, vmax=50),
         format_heatmap(result.melt_heatmap,
                        title="Fig. 10b: wax melted, coolest first",
                        vmin=0, vmax=1),
         f"temperature spread at peak: coolest-first {cf_spread:.2f} C "
         f"vs round-robin {rr_spread:.2f} C",
         f"max per-server melt: {result.melt_heatmap.max() * 100:.1f}% "
         f"(paper: 0%)")

    # Tighter than round robin at peak load...
    assert cf_spread < rr_spread
    # ...and still no melting or cooling benefit.
    assert result.max_melt_fraction < 0.02
    assert abs(result.peak_reduction_vs(baseline)) < 0.01

"""The checkpoint/resume differential oracle, as a standalone sweep.

For every scheduling policy, with faults off and on, this script runs a
simulation straight through, runs it again writing a checkpoint every
``--every`` ticks, resumes from **each** checkpoint, and requires every
resumed run's ``SimulationResult.fingerprint()`` to be bit-identical to
the straight-through run's.  On a mismatch
:func:`repro.state.verify_roundtrip` raises with the first divergent
metric and tick (the golden harness's first-divergence formatter), and
the script exits non-zero.

This is the CI `checkpoint-roundtrip` gate; the same contract is
exercised per-commit at small scale by ``tests/test_checkpoint.py``.

Run::

    PYTHONPATH=src python benchmarks/checkpoint_roundtrip.py
    PYTHONPATH=src REPRO_CHECKS=cheap \
        python benchmarks/checkpoint_roundtrip.py --servers 100 --hours 24
"""

from __future__ import annotations

import argparse
import dataclasses
import tempfile

from repro.cluster.simulation import ClusterSimulation
from repro.config import TraceConfig, paper_cluster_config
from repro.core.policies import SCHEDULER_NAMES, make_scheduler
from repro.errors import CheckpointError
from repro.faults.injector import FaultInjector
from repro.faults.scenarios import (cooling_derate, kill_servers,
                                    merge_scenarios, stuck_wax_sensors,
                                    temperature_hazard)
from repro.state import restore_simulation, verify_roundtrip


def _config(servers: int, hours: float, seed: int, with_faults: bool):
    cfg = paper_cluster_config(num_servers=servers, seed=seed)
    cfg = cfg.replace(trace=TraceConfig(duration_hours=hours))
    if not with_faults:
        return cfg
    quarter = max(1, servers // 4)
    faults = merge_scenarios(
        kill_servers([1, quarter], 0.25 * hours, repair_after_hours=2.0),
        stuck_wax_sensors([2], 0.3 * hours),
        cooling_derate(0.8, 0.5 * hours, restore_after_hours=1.0),
        temperature_hazard(500.0))
    return dataclasses.replace(cfg, faults=faults)


def _simulation(cfg, policy: str, **kwargs) -> ClusterSimulation:
    injector = FaultInjector(cfg) if cfg.faults.enabled else None
    return ClusterSimulation(cfg, make_scheduler(policy, cfg),
                             fault_injector=injector, **kwargs)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--servers", type=int, default=16)
    parser.add_argument("--hours", type=float, default=6.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--every", type=int, default=120,
                        help="checkpoint interval in ticks")
    args = parser.parse_args()

    failures = []
    for policy in SCHEDULER_NAMES:
        for with_faults in (False, True):
            label = f"{policy} ({'faults' if with_faults else 'clean'})"
            cfg = _config(args.servers, args.hours, args.seed, with_faults)
            straight = _simulation(cfg, policy).run()
            with tempfile.TemporaryDirectory() as tmp:
                sim = _simulation(cfg, policy,
                                  checkpoint_every=args.every,
                                  checkpoint_dir=tmp)
                full = sim.run()
                if full.fingerprint() != straight.fingerprint():
                    failures.append(label)
                    print(f"FAIL {label}: checkpointing perturbed the run "
                          f"({straight.fingerprint()} -> "
                          f"{full.fingerprint()})")
                    continue
                ticks = [record["tick"]
                         for record in sim.checkpoint_records]
                try:
                    for record in sim.checkpoint_records:
                        resumed = restore_simulation(record["file"]).run()
                        verify_roundtrip(straight, resumed)
                except CheckpointError as exc:
                    failures.append(label)
                    print(f"FAIL {label}: {exc}")
                    continue
            print(f"ok   {label}: fingerprint {straight.fingerprint()}, "
                  f"resumed from ticks {ticks}")

    if failures:
        print(f"{len(failures)} round-trip(s) diverged: "
              + ", ".join(failures))
        return 1
    print(f"all {2 * len(SCHEDULER_NAMES)} round-trips bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Table I: the five-workload suite and its VMT classification.

Beyond echoing the table, this bench verifies the classes are *derived*:
the thermal model, asked whether a server full of each workload would
melt wax in isolation, reproduces the paper's hot/cold labels exactly.
"""

from paper_reference import TABLE1_PAPER, comparison_table, emit, once

from repro.analysis.experiments import table1_workloads


def bench_table1_workloads(benchmark, capsys):
    rows = once(benchmark, table1_workloads)

    table = [(name, f"{power:.1f} W", TABLE1_PAPER[name][1], derived)
             for name, power, __, derived in rows]
    emit(capsys, "Table I -- workloads (class derived from the thermal "
         "model):",
         comparison_table(["workload", "CPU power", "paper class",
                           "derived class"], table))

    assert len(rows) == 5
    for name, power, paper_class, derived_class in rows:
        expected_power, expected_class = TABLE1_PAPER[name]
        assert power == expected_power
        assert paper_class == expected_class
        assert derived_class == expected_class

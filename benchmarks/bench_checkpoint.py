"""Checkpoint overhead benchmark: snapshot/restore cost vs the tick loop.

Measures what checkpointing adds to a run at the paper's 100-server
sweep scale:

* ``snapshot_capture_s`` -- building the in-memory state tree
  (``ClusterSimulation.snapshot()``);
* ``snapshot_write_s`` -- capture **plus** serializing the ``.npz`` and
  manifest to disk (``save_snapshot``), i.e. the full cost one
  checkpoint adds to the run;
* ``restore_s`` -- ``load_snapshot`` + ``restore_simulation``, the cost
  paid once on resume;
* ``checkpoint_overhead`` -- extra wall time of a run checkpointing
  every 60 ticks relative to an identical run without checkpoints.

The acceptance bar is **one snapshot write costs < 5% of a tick-loop
second** (i.e. < 50 ms wall) at 100 servers, and the checkpointed run's
fingerprint is bit-identical to the baseline's -- resume correctness is
never traded for speed, so the snapshot path takes no shortcuts.

Results merge into ``BENCH_perf.json`` under ``checkpoint``, alongside
the scaling and sanitizer numbers.

Run::

    PYTHONPATH=src python benchmarks/bench_checkpoint.py
    PYTHONPATH=src python benchmarks/bench_checkpoint.py \
        --servers 20 --hours 6   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time

from repro.cluster.simulation import ClusterSimulation
from repro.config import TraceConfig, paper_cluster_config
from repro.core.policies import make_scheduler
from repro.state import (load_snapshot, restore_simulation, save_snapshot,
                         snapshot_manifest_path)

SNAPSHOT_BAR_S = 0.05  # < 5% of a tick-loop second


def _build(config, policy, **kwargs):
    return ClusterSimulation(config, make_scheduler(policy, config),
                             record_heatmaps=False, **kwargs)


def _timed_run(sim) -> tuple:
    start = time.perf_counter()
    result = sim.run()
    return result, time.perf_counter() - start


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--servers", type=int, default=100)
    parser.add_argument("--hours", type=float, default=48.0)
    parser.add_argument("--policy", default="vmt-wa")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--every", type=int, default=60,
                        help="checkpoint interval (ticks) for the "
                             "instrumented run")
    parser.add_argument("--repeats", type=int, default=5,
                        help="take the fastest of N snapshot timings")
    parser.add_argument("--out", default="BENCH_perf.json")
    args = parser.parse_args()

    config = paper_cluster_config(num_servers=args.servers, seed=args.seed)
    config = config.replace(trace=TraceConfig(duration_hours=args.hours))

    baseline_result, baseline_s = _timed_run(_build(config, args.policy))
    ticks = config.trace.num_steps
    print(f"baseline: {baseline_s:.3f} s over {ticks} ticks "
          f"({args.servers} servers, {args.policy})")

    with tempfile.TemporaryDirectory() as tmp:
        sim = _build(config, args.policy,
                     checkpoint_every=args.every, checkpoint_dir=tmp)
        ckpt_result, ckpt_s = _timed_run(sim)
        identical = ckpt_result.fingerprint() == baseline_result.fingerprint()
        n_checkpoints = len(sim.checkpoint_records)
        print(f"checkpointed (every {args.every}): {ckpt_s:.3f} s, "
              f"{n_checkpoints} snapshots, bit-identical: {identical}")

        # Per-snapshot cost, measured directly on the finished sim (the
        # state tree has the same shape at any tick boundary).
        capture_s = min(_time_once(sim.snapshot) for _ in range(args.repeats))
        path = os.path.join(tmp, "bench-snapshot.npz")
        write_s = min(
            _time_once(lambda: save_snapshot(sim.snapshot(), path))
            for _ in range(args.repeats))
        snapshot_bytes = (os.path.getsize(path)
                          + os.path.getsize(snapshot_manifest_path(path)))
        restore_s = min(
            _time_once(lambda: restore_simulation(load_snapshot(path)))
            for _ in range(args.repeats))

    overhead = ckpt_s / baseline_s - 1.0 if baseline_s > 0 else 0.0
    print(f"snapshot: capture {capture_s * 1000:.1f} ms, "
          f"capture+write {write_s * 1000:.1f} ms "
          f"({snapshot_bytes / 1024:.0f} KiB); "
          f"restore {restore_s * 1000:.1f} ms")
    print(f"snapshot write vs bar: {write_s * 1000:.1f} ms "
          f"(bar: < {SNAPSHOT_BAR_S * 1000:.0f} ms); "
          f"run overhead at every={args.every}: {overhead * 100:.1f}%")

    payload = {
        "num_servers": args.servers,
        "policy": args.policy,
        "ticks": ticks,
        "bit_identical": identical,
        "tick_loop_s": baseline_s,
        "checkpoint_every": args.every,
        "checkpointed_run_s": ckpt_s,
        "checkpoint_overhead": overhead,
        "snapshot_capture_s": capture_s,
        "snapshot_write_s": write_s,
        "snapshot_bytes": snapshot_bytes,
        "restore_s": restore_s,
        "snapshot_share_of_tick_loop_second": write_s / 1.0,
    }
    merged = {}
    if os.path.exists(args.out):
        with open(args.out) as handle:
            merged = json.load(handle)
    merged["cpu_count"] = os.cpu_count()
    merged["checkpoint"] = payload
    with open(args.out, "w") as handle:
        json.dump(merged, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0 if identical and write_s < SNAPSHOT_BAR_S else 1


def _time_once(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


if __name__ == "__main__":
    raise SystemExit(main())

"""Figure 6: latency scaling for colocated Data Caching and Web Search.

Paper claims reproduced: caching tolerates colocation (solo-6C is best
only at the extremes; in the middle band a mixture is similar or
better), while search slows across the entire client range when
colocated.
"""

import numpy as np
from paper_reference import comparison_table, emit, once

from repro.analysis.experiments import figure6_qos


def bench_fig06_qos_colocation(benchmark, capsys):
    curves = once(benchmark, figure6_qos)

    rows = []
    for i in (0, len(curves.caching_rps) // 2, -1):
        rps = curves.caching_rps[i]
        rows.append((f"{rps:,.0f}",
                     f"{curves.caching_mean_ms['2C+Search'][i]:.2f}",
                     f"{curves.caching_mean_ms['4C+Search'][i]:.2f}",
                     f"{curves.caching_mean_ms['6C'][i]:.2f}"))
    emit(capsys, "Figure 6 (caching mean latency, ms):",
         comparison_table(["RPS/core", "2C+Search", "4C+Search", "6C"],
                          rows))

    rows = []
    for i in (0, len(curves.search_clients) // 2, -1):
        cpc = curves.search_clients[i]
        rows.append((f"{cpc:.0f}",
                     f"{curves.search_mean_s['2C+Caching'][i]:.3f}",
                     f"{curves.search_mean_s['4C+Caching'][i]:.3f}",
                     f"{curves.search_mean_s['6C'][i]:.3f}"))
    emit(capsys, "Figure 6 (search mean latency, s):",
         comparison_table(["clients/core", "2C+Caching", "4C+Caching",
                           "6C"], rows))

    # Caching: solo best at the low end...
    assert curves.caching_mean_ms["6C"][0] < \
        curves.caching_mean_ms["2C+Search"][0]
    # ...mixture similar-or-better in the middle band.
    mid = len(curves.caching_rps) * 3 // 4
    assert curves.caching_mean_ms["2C+Search"][mid] < \
        1.1 * curves.caching_mean_ms["6C"][mid]

    # Search: colocation slower across the whole range.
    solo = curves.search_mean_s["6C"]
    assert np.all(curves.search_mean_s["2C+Caching"] > solo)
    assert np.all(curves.search_mean_s["4C+Caching"] > solo)

    # Tails amplify means in both panels.
    assert np.all(curves.caching_p90_ms["6C"] > curves.caching_mean_ms["6C"])
    assert np.all(curves.search_p90_s["6C"] > curves.search_mean_s["6C"])

"""Measure the oracle gap: offline batch vs live forecast-driven runs.

The offline engine enjoys the paper's oracle assumption -- a grouping
value tuned against the full future trace.  The live subsystem
(:mod:`repro.live`) replaces that oracle with a pluggable forecaster
and pays a measurable price.  This benchmark quantifies it:

* **oracle differential** -- a live run driven by the perfect
  forecaster over a trace-replay feed, asserted *bit-identical* to the
  batch run (any mismatch is a harness bug and fails the gate);
* **naive gap** -- the last-value (persistence) forecaster's peak
  cooling load against the oracle's, over a full diurnal cycle where
  lagging the ramp genuinely hurts;
* **mpc recovery** -- how much of that gap the shadow-racing MPC
  controller claws back with the same naive forecaster.

Results merge into ``BENCH_perf.json`` under ``"live"``.  The exit
status gates CI: nonzero when the oracle differential is not
bit-identical or the naive gap is not positive.

Run::

    PYTHONPATH=src python benchmarks/bench_live_gap.py
    PYTHONPATH=src python benchmarks/bench_live_gap.py \
        --servers 8 --hours 24 --decision-every 15      # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.cluster.simulation import run_simulation
from repro.config import SimulationConfig, TraceConfig
from repro.core.policies import make_scheduler
from repro.live import LiveRunner, MPCController, TraceReplayFeed


def measure(num_servers: int, hours: float, seed: int, policy: str,
            decision_every: int, mpc_horizon: int) -> dict:
    config = SimulationConfig(
        num_servers=num_servers, seed=seed,
        trace=TraceConfig(duration_hours=hours))

    start = time.perf_counter()
    batch = run_simulation(config, make_scheduler(policy, config))
    batch_wall = time.perf_counter() - start

    oracle = LiveRunner(config, policy,
                        TraceReplayFeed.from_config(config),
                        forecaster="oracle").run()
    naive = LiveRunner(config, policy,
                       TraceReplayFeed.from_config(config),
                       forecaster="last-value",
                       decision_every=decision_every).run()
    mpc = MPCController(config, horizon_steps=mpc_horizon,
                        max_workers=4)
    mpc_run = LiveRunner(config, policy,
                         TraceReplayFeed.from_config(config),
                         forecaster="last-value",
                         decision_every=decision_every, mpc=mpc).run()

    batch_peak = batch.peak_cooling_load_w
    naive_peak = naive.result.peak_cooling_load_w
    mpc_peak = mpc_run.result.peak_cooling_load_w
    return {
        "num_servers": num_servers,
        "hours": hours,
        "seed": seed,
        "policy": policy,
        "decision_every": decision_every,
        "batch_wall_s": batch_wall,
        "batch_fingerprint": batch.fingerprint(),
        "oracle": {
            "fingerprint": oracle.result.fingerprint(),
            "bit_identical": (oracle.result.fingerprint()
                              == batch.fingerprint()),
            "wall_s": oracle.wall_clock_s,
        },
        "naive": {
            "forecaster": "last-value",
            "peak_cooling_w": naive_peak,
            "peak_degradation_pct": 100.0 * (naive_peak / batch_peak
                                             - 1.0),
            "wall_s": naive.wall_clock_s,
        },
        "mpc": {
            "horizon_steps": mpc_horizon,
            "decisions": len(mpc_run.mpc_decisions or []),
            "peak_cooling_w": mpc_peak,
            "peak_vs_oracle_pct": 100.0 * (mpc_peak / batch_peak - 1.0),
            "gap_recovered_pct": (
                100.0 * (naive_peak - mpc_peak)
                / (naive_peak - batch_peak)
                if naive_peak > batch_peak else None),
            "wall_s": mpc_run.wall_clock_s,
        },
        "oracle_peak_cooling_w": batch_peak,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--servers", type=int, default=8)
    parser.add_argument("--hours", type=float, default=24.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--policy", default="vmt-ta")
    parser.add_argument("--decision-every", type=int, default=15)
    parser.add_argument("--mpc-horizon", type=int, default=60)
    parser.add_argument("--out", default="BENCH_perf.json")
    args = parser.parse_args()

    print(f"live gap: {args.servers} servers, {args.hours:g} h, "
          f"{args.policy}, decisions every {args.decision_every} ...")
    live = measure(args.servers, args.hours, args.seed, args.policy,
                   args.decision_every, args.mpc_horizon)
    print(f"  oracle bit-identical: {live['oracle']['bit_identical']} "
          f"(fingerprint {live['batch_fingerprint']})")
    print(f"  oracle peak {live['oracle_peak_cooling_w']:.0f} W; naive "
          f"peak {live['naive']['peak_cooling_w']:.0f} W "
          f"({live['naive']['peak_degradation_pct']:+.2f}%)")
    recovered = live["mpc"]["gap_recovered_pct"]
    print(f"  mpc peak {live['mpc']['peak_cooling_w']:.0f} W "
          f"({live['mpc']['peak_vs_oracle_pct']:+.2f}% vs oracle"
          + (f", {recovered:.0f}% of the gap recovered)"
             if recovered is not None else ")"))

    merged = {}
    if os.path.exists(args.out):
        with open(args.out) as handle:
            merged = json.load(handle)
    merged["live"] = live
    with open(args.out, "w") as handle:
        json.dump(merged, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    ok = (live["oracle"]["bit_identical"]
          and live["naive"]["peak_degradation_pct"] > 0.0)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

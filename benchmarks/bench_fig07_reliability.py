"""Figure 7: server reliability, round robin vs rotated VMT.

Paper: with 20% of servers rotating per month (3 months hot, 2 cold),
the 3-year cumulative failure rate of VMT-WA ends only ~0.4-0.6% above
round robin.
"""

from paper_reference import (FIG7_PAPER_GAP_BAND, comparison_table, emit,
                             once)

from repro.analysis.experiments import figure7_reliability


def bench_fig07_reliability(benchmark, capsys):
    curves = once(benchmark, lambda: figure7_reliability(months=36))

    rows = []
    for month in (6, 12, 24, 36):
        rows.append((month, f"{curves.round_robin[month] * 100:.2f}%",
                     f"{curves.vmt[month] * 100:.2f}%"))
    emit(capsys, "Figure 7 -- cumulative failure probability:",
         comparison_table(["month", "round robin", "VMT (rotated)"], rows),
         f"36-month gap: {curves.final_gap_percent:.2f}% "
         f"(paper: {FIG7_PAPER_GAP_BAND[0]}-{FIG7_PAPER_GAP_BAND[1]}%)")

    lo, hi = FIG7_PAPER_GAP_BAND
    assert lo - 0.1 <= curves.final_gap_percent <= hi + 0.2
    # 6-month view stays in the paper's 0-8% axis band.
    assert curves.round_robin[6] * 100 < 8.0
    # 3-year cumulative failures land in the paper's 0-40% axis band.
    assert 20.0 < curves.round_robin[36] * 100 < 40.0

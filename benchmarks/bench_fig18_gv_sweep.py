"""Figure 18: GV sweep, VMT-TA vs VMT-WA (100 servers).

Paper: both peak at GV=22 and trend down together above it; below 22
VMT-TA quickly drops to zero while VMT-WA drops to ~6% and then degrades
much more slowly -- the robustness argument for VMT-WA.
"""

import numpy as np
from paper_reference import comparison_table, emit, once

from repro.analysis.experiments import figure18_gv_sweep


def bench_fig18_gv_sweep(benchmark, capsys):
    sweep = once(benchmark,
                 lambda: figure18_gv_sweep(
                     grouping_values=tuple(range(10, 31, 2)),
                     num_servers=100))

    ta = sweep.reductions["vmt-ta"] * 100
    wa = sweep.reductions["vmt-wa"] * 100
    rows = [(f"{gv:g}", f"{t:.1f}%", f"{w:.1f}%")
            for gv, t, w in zip(sweep.values, ta, wa)]
    emit(capsys, "Figure 18 -- peak reduction vs GV (paper: both peak "
         "at GV=22; TA collapses below, WA degrades slowly):",
         comparison_table(["GV", "VMT-TA", "VMT-WA"], rows))

    best_ta_gv, best_ta = sweep.best("vmt-ta")
    best_wa_gv, best_wa = sweep.best("vmt-wa")
    # Both algorithms peak at GV=22.
    assert best_ta_gv == 22.0
    assert best_wa_gv == 22.0
    assert 0.10 < best_ta < 0.15
    # Above the optimum they trend down together.
    above = sweep.values >= 22
    assert np.allclose(ta[above], wa[above], atol=1.0)
    assert all(a >= b for a, b in zip(ta[above], ta[above][1:]))
    # Below the optimum TA collapses while WA keeps a meaningful floor.
    below = (sweep.values >= 14) & (sweep.values <= 20)
    assert np.all(ta[below] < 2.0)
    assert np.all(wa[below] > 2.0)

"""Ablation: how sensor noise in the wax-state estimator affects VMT-WA.

VMT-WA never sees the true wax state: it integrates a lookup table from
a noisy container-exterior temperature sensor (ref. [24]).  This
ablation sweeps the sensor noise from perfect (0 C) to severe (2 C) and
checks the policy degrades gracefully -- the estimator's boundary
re-anchoring (full-solid / full-liquid events are unambiguous) keeps the
group-extension logic usable even with poor sensors.
"""

import dataclasses

from paper_reference import comparison_table, emit, once

from repro import paper_cluster_config, run_simulation
from repro.core import RoundRobinScheduler, VMTWaxAwareScheduler


def bench_ablation_estimator(benchmark, capsys):
    def study():
        out = {}
        for noise in (0.0, 0.2, 1.0, 2.0):
            config = paper_cluster_config(num_servers=100,
                                          grouping_value=20.0)
            config = config.replace(thermal=dataclasses.replace(
                config.thermal, wax_sensor_noise_c=noise))
            rr = run_simulation(config, RoundRobinScheduler(config),
                                record_heatmaps=False)
            wa = run_simulation(config, VMTWaxAwareScheduler(config),
                                record_heatmaps=False)
            out[noise] = wa.peak_reduction_vs(rr) * 100.0
        return out

    results = once(benchmark, study)

    rows = [(f"{noise:.1f} C", f"{reduction:.1f}%")
            for noise, reduction in results.items()]
    emit(capsys, "Ablation -- VMT-WA (GV=20) vs wax-sensor noise:",
         comparison_table(["sensor noise", "peak reduction"], rows))

    # The default sensor (0.2 C) performs like a perfect one.
    assert abs(results[0.2] - results[0.0]) < 1.5
    # Even a poor sensor leaves a positive reduction.
    assert results[2.0] > 1.0
    # Noise never *helps* beyond run-to-run wiggle.
    assert results[2.0] < results[0.0] + 1.5

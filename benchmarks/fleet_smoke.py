#!/usr/bin/env python3
"""CI smoke test for the heterogeneous fleet subsystem.

Three gates, each a hard exit-1 failure:

1. **Homogeneous identity** -- a homogeneous fleet under the
   ``"independent"`` policy must be *fingerprint-identical* to
   ``run_datacenter`` for the same config, site count, and stagger,
   even while one pool worker is SIGKILLed mid-run (the
   ``REPRO_KILL_RUN`` crash-injection hook): the bounded serial retry
   must recover the lost site without changing a single bit.
2. **Heterogeneous demo** -- the documented 3-site reference fleet
   (CPU+GPU hardware classes, a wrapped overnight-peak tariff, one
   battery site) must run end to end under every fleet policy with
   invariant checks on, producing finite, non-negative cost and
   carbon accounts.
3. **Economics sanity** -- market-aware policies must not *increase*
   the fleet bill relative to independent sites (they only ever move
   load toward cheaper power or discharge stored off-peak energy).

Usage::

    REPRO_CHECKS=cheap python benchmarks/fleet_smoke.py \
        [--servers N] [--hours H] [--kill-site LABEL]
"""

import argparse
import os
import sys

from repro import api
from repro.cluster.multi import run_datacenter
from repro.config import SimulationConfig, TraceConfig
from repro.fleet import FLEET_POLICIES, FleetSpec, run_fleet


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--servers", type=int, default=10)
    parser.add_argument("--hours", type=float, default=8.0)
    parser.add_argument("--sites", type=int, default=3)
    parser.add_argument("--stagger", type=float, default=4.0)
    parser.add_argument("--kill-site", default="site-site-1[vmt-ta]",
                        help="RunSpec label whose worker is SIGKILLed "
                             "('' disables the crash injection)")
    args = parser.parse_args()

    config = SimulationConfig(
        num_servers=args.servers, seed=7,
        trace=TraceConfig(duration_hours=args.hours))
    failures = 0

    # Gate 1: homogeneous identity, with a worker killed mid-fleet.
    golden = run_datacenter(config, args.sites, policy="vmt-ta",
                            stagger_hours=args.stagger)
    if args.kill_site:
        os.environ["REPRO_KILL_RUN"] = args.kill_site
        print(f"crash injection armed: worker running "
              f"{args.kill_site!r} will be SIGKILLed")
    fleet = run_fleet(
        FleetSpec.homogeneous(config, args.sites, policy="vmt-ta",
                              stagger_hours=args.stagger),
        max_workers=2, checks="cheap")
    os.environ.pop("REPRO_KILL_RUN", None)
    golden_fp = [r.fingerprint() for r in golden.cluster_results]
    fleet_fp = [r.fingerprint() for r in fleet.cluster_results]
    if fleet_fp != golden_fp:
        print(f"FAIL: homogeneous fleet diverged from run_datacenter:\n"
              f"  fleet:  {fleet_fp}\n  golden: {golden_fp}")
        failures += 1
    else:
        print(f"homogeneous identity OK: {fleet_fp} "
              f"(worker kill recovered bit-identically)")

    # Gates 2+3: the heterogeneous demo under every fleet policy.
    baseline_cost = None
    for policy in sorted(FLEET_POLICIES):
        result = api.fleet_run(demo=True, config=config, policy=policy,
                               checks="cheap")
        cost = result.total_energy_cost_usd
        carbon = result.total_carbon_kg
        if not (cost >= 0 and carbon >= 0
                and cost == cost and carbon == carbon):  # NaN guard
            print(f"FAIL: {policy} produced bad accounts "
                  f"(cost={cost!r}, carbon={carbon!r})")
            failures += 1
            continue
        print(f"{policy:<22s} bill ${cost:>8.2f}  carbon "
              f"{carbon:>8.1f} kg  routed "
              f"{result.moved_job_cores:>6d} job-cores")
        if policy == "independent":
            baseline_cost = cost
    if baseline_cost is not None:
        for policy in ("price-arbitrage", "battery-co-schedule"):
            result = api.fleet_run(demo=True, config=config,
                                   policy=policy, checks="cheap")
            if result.total_energy_cost_usd > baseline_cost * 1.001:
                print(f"FAIL: {policy} bill "
                      f"${result.total_energy_cost_usd:.2f} exceeds "
                      f"independent ${baseline_cost:.2f}")
                failures += 1

    if failures:
        print(f"\nFAILED: {failures} fleet smoke gate(s) failed")
        return 1
    print("\nfleet smoke OK: homogeneous identity held under a "
          "SIGKILLed worker and every fleet policy priced cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""CI smoke test for the observability layer.

For each policy this script runs a small telemetry-enabled simulation,
validates every emitted JSONL trace line and the run manifest against
the versioned schemas, and asserts the cardinal invariant: the
fingerprint recorded in the manifest is bit-identical to the same run
executed with telemetry disabled.

Usage::

    python benchmarks/telemetry_smoke.py [--servers N] [--hours H]
"""

import argparse
import dataclasses
import sys
import tempfile

from repro import api
from repro.core import SCHEDULER_NAMES
from repro.obs import read_manifests, validate_manifest, validate_trace_file


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--servers", type=int, default=16)
    parser.add_argument("--hours", type=float, default=4.0)
    args = parser.parse_args()

    from repro import paper_cluster_config
    base = paper_cluster_config(num_servers=args.servers,
                                grouping_value=22.0)
    config = base.replace(
        trace=dataclasses.replace(base.trace, duration_hours=args.hours))

    failures = 0
    with tempfile.TemporaryDirectory(prefix="telemetry-smoke-") as tmp:
        for policy in SCHEDULER_NAMES:
            with_tel = api.run(policy=policy, config=config,
                               record_heatmaps=False, telemetry=tmp)
            without = api.run(policy=policy, config=config,
                              record_heatmaps=False)
            fp_on = with_tel.fingerprint()
            fp_off = without.fingerprint()
            parity = "OK" if fp_on == fp_off else "MISMATCH"
            print(f"{policy:<16} fingerprint {fp_on} "
                  f"(telemetry off: {fp_off}) parity={parity}")
            if fp_on != fp_off:
                failures += 1

        manifests = read_manifests(tmp)
        if len(manifests) != len(SCHEDULER_NAMES):
            print(f"expected {len(SCHEDULER_NAMES)} manifests, "
                  f"found {len(manifests)}")
            failures += 1
        for manifest in manifests:
            validate_manifest(manifest)
            lines = validate_trace_file(
                f"{tmp}/{manifest['run_id']}.trace.jsonl")
            recorded = manifest["result_fingerprint"]
            print(f"{manifest['run_id']:<40} {lines} trace lines valid, "
                  f"manifest fingerprint {recorded}")

    if failures:
        print(f"\nFAILED: {failures} policy/manifest check(s) failed")
        return 1
    print("\ntelemetry smoke OK: every trace line valid, fingerprints "
          "bit-identical with telemetry on and off")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 12: VMT-TA average hot-group temperature vs GV (1000 servers).

Paper: round robin "almost but does not quite reach the melting
temperature"; with VMT-TA the hot group exceeds it, and the degree to
which it does is inversely proportional to the GV.
"""

import numpy as np
from paper_reference import comparison_table, emit, once

from repro.analysis.experiments import figure12_hot_group_temps


def bench_fig12_ta_hot_group_temp(benchmark, capsys):
    temps = once(benchmark,
                 lambda: figure12_hot_group_temps(num_servers=1000))

    rows = [("round-robin (cluster mean)",
             f"{temps.round_robin_mean.max():.2f}")]
    for gv, series in sorted(temps.per_gv.items()):
        rows.append((f"GV={gv:g} hot group", f"{np.nanmax(series):.2f}"))
    emit(capsys, "Figure 12 -- peak average temperature (deg C), "
         f"melt point {temps.melt_temp_c} C:",
         comparison_table(["series", "peak temp"], rows))

    # Round robin almost-but-not-quite reaches the melt point.
    assert 34.0 < temps.round_robin_mean.max() < temps.melt_temp_c
    # Every plotted GV's hot group exceeds the melt point at peak...
    peaks = {gv: float(np.nanmax(series))
             for gv, series in temps.per_gv.items()}
    for gv in (21, 22, 23, 24):
        assert peaks[gv] > temps.melt_temp_c
    # ...and hotness is inversely proportional to GV.
    ordered = [peaks[gv] for gv in sorted(peaks)]
    assert all(a >= b - 0.05 for a, b in zip(ordered, ordered[1:]))

"""Table II: the empirically derived GV -> VMT mapping.

The paper's table is derived for *its* datacenter and the paper itself
cautions that "the GV to VMT relationship can vary with different
mixtures of the PMT and workload composition".  We reproduce the
derivation procedure (capacity-matched fusion, melt-onset equivalence --
see ``derive_gv_vmt_mapping``) on our calibrated configuration and check
the properties that transfer: the mapping is non-linear, GVs that melt
no wax are indistinguishable from the PMT, and lower GVs act like wax
with a lower melting point (the 'reducing the melting point' behaviour
of Section III).
"""

from paper_reference import TABLE2_PAPER, comparison_table, emit, once

from repro.analysis.experiments import table2_gv_mapping

GVS = (18.0, 19.0, 20.0, 21.0, 22.0, 23.0, 24.0, 26.0, 28.0, 32.0)


def bench_table2_gv_mapping(benchmark, capsys):
    rows = once(benchmark,
                lambda: table2_gv_mapping(grouping_values=GVS,
                                          num_servers=100))

    table = [(f"{gv:.2f}", f"{vmt:.2f}", f"{delta:+.2f}")
             for gv, vmt, delta in rows]
    emit(capsys, "Table II -- derived GV -> VMT mapping "
         "(PMT = 35.7 C; paper's own mapping spans +2.0..-7.0 C for its "
         "configuration):",
         comparison_table(["GV", "VMT (deg C)", "delta vs PMT"], table))

    by_gv = {gv: vmt for gv, vmt, __ in rows}
    # Lower GV (hotter group) behaves like lower-melt-temp wax.
    melting = [vmt for gv, vmt in sorted(by_gv.items()) if vmt < 35.7]
    assert all(a <= b + 1e-9 for a, b in zip(melting, melting[1:]))
    # Every melting GV maps strictly below the PMT.
    assert by_gv[20.0] < 35.7
    assert by_gv[22.0] < 35.7
    # A GV too large to melt wax is indistinguishable from the PMT.
    assert by_gv[32.0] == 35.7
    # The mapping is non-linear: unequal VMT steps per unit GV.
    steps = [by_gv[b] - by_gv[a]
             for a, b in zip((18.0, 22.0, 26.0), (20.0, 24.0, 28.0))]
    assert max(steps) - min(steps) > 0.2

"""Ablation: job churn in the persistent baselines.

Our baselines keep jobs on their servers with an exponential lifetime
(churn).  This knob controls the per-server workload-mix variance behind
the paper's Fig. 9 temperature spread:

* churn -> 1 (re-deal everything each minute) washes out the spread and
  makes round robin look as tight as coolest-first;
* churn -> 0 (jobs pinned forever) lets mix imbalances persist for hours
  -- the spread grows so large that round robin itself starts melting
  wax, contradicting the paper's Fig. 9b.

The default (0.10/minute, ~10-minute mean lifetime) sits in the regime
where the spread is visible but the melt stays negligible.
"""

import numpy as np
from paper_reference import comparison_table, emit, once

from repro import paper_cluster_config, run_simulation
from repro.core import RoundRobinScheduler


def bench_ablation_churn(benchmark, capsys):
    config = paper_cluster_config(num_servers=100, grouping_value=22.0)

    def study():
        out = {}
        for churn in (0.02, 0.10, 0.50, 1.00):
            result = run_simulation(
                config, RoundRobinScheduler(config, churn_per_tick=churn))
            peak_tick = int(np.argmax(result.cooling_load_w))
            out[churn] = (float(result.temp_heatmap[peak_tick].std()),
                          float(result.max_melt_fraction))
        return out

    results = once(benchmark, study)

    rows = [(f"{churn:.2f}", f"{spread:.2f} C", f"{melt * 100:.1f}%")
            for churn, (spread, melt) in results.items()]
    emit(capsys, "Ablation -- baseline job churn vs round-robin spread "
         "and melt:",
         comparison_table(["churn/min", "temp spread @peak",
                           "max mean melt"], rows))

    spreads = {c: s for c, (s, __) in results.items()}
    melts = {c: m for c, (__, m) in results.items()}
    # Less churn -> more spread.
    assert spreads[0.02] > spreads[0.10] > spreads[1.00]
    # The default keeps round robin's melt negligible (paper Fig. 9b)...
    assert melts[0.10] < 0.02
    # ...while near-pinned jobs would violate it.
    assert melts[0.02] > melts[0.10]

"""Figure 11: VMT-TA heatmaps at GV=22 -- the hot group melts its wax.

Paper: the hot/cold group separation is immediately apparent; the hot
group exceeds the wax melting temperature (storing energy) even though
the cluster average stays unchanged, and only hot-group wax melts.
"""

import numpy as np
from paper_reference import emit, once

from repro.analysis.experiments import heatmap_experiment
from repro.analysis.reporting import format_heatmap
from repro.core.grouping import hot_group_size


def bench_fig11_vmt_ta_heatmap(benchmark, capsys):
    result = once(benchmark,
                  lambda: heatmap_experiment("vmt-ta", grouping_value=22.0))

    hot_size = hot_group_size(22.0, 35.7, 100)
    emit(capsys,
         format_heatmap(result.temp_heatmap,
                        title="Fig. 11a: air temperature, VMT-TA GV=22",
                        vmin=10, vmax=50),
         format_heatmap(result.melt_heatmap,
                        title="Fig. 11b: wax melted, VMT-TA GV=22",
                        vmin=0, vmax=1),
         f"hot group: servers 0..{hot_size - 1} (low rows); "
         f"hot-group peak mean temp "
         f"{np.nanmax(result.hot_group_mean_temp_c):.1f} C vs melt 35.7 C")

    # The hot group crosses the melt point; the cluster mean does not.
    assert np.nanmax(result.hot_group_mean_temp_c) > 35.7
    assert result.mean_temp_c.max() < 35.7
    # Only hot-group wax melts (Fig. 11b).
    melt = result.melt_heatmap
    assert melt[:, :hot_size].max() > 0.9
    assert melt[:, hot_size:].max() < 0.1
    # Visible group separation in the temperature field at peak.
    peak_tick = int(np.argmax(result.cooling_load_w))
    hot_mean = melt[peak_tick, :hot_size].mean()
    assert result.temp_heatmap[peak_tick, :hot_size].mean() > \
        result.temp_heatmap[peak_tick, hot_size:].mean() + 3.0
    assert hot_mean > 0.3

"""Figure 15: VMT-WA average hot-group temperature vs GV (1000 servers).

Paper: for GV=20 and 21 the hot-group average drops abruptly (~hours
20-21) when the original group's wax hits the threshold and the group is
extended; for larger GVs (wax never fully melts) the curves match
VMT-TA's.
"""

import numpy as np
from paper_reference import comparison_table, emit, once

from repro.analysis.experiments import (figure12_hot_group_temps,
                                        figure15_hot_group_temps)


def bench_fig15_wa_hot_group_temp(benchmark, capsys):
    temps = once(benchmark,
                 lambda: figure15_hot_group_temps(num_servers=1000))

    rows = []
    for gv, series in sorted(temps.per_gv.items()):
        rows.append((f"GV={gv:g}", f"{np.nanmax(series):.2f}",
                     f"{np.nanmin(series[1100:1300]):.2f}"))
    emit(capsys, "Figure 15 -- VMT-WA hot-group temperature "
         "(peak / around-hour-20 minimum, deg C):",
         comparison_table(["series", "peak", "h18-22 min"], rows))

    # Low GVs show the *abrupt* drop when the group extends: a large
    # fall within a couple of ticks, far steeper than anything the load
    # curve itself produces.  High GVs never extend, so their steepest
    # mid-peak drop is the gentle load-following slope.
    window = slice(1080, 1320)  # hours 18..22
    low_drop = float(np.nanmin(np.diff(temps.per_gv[20][window])))
    high_drop = float(np.nanmin(np.diff(temps.per_gv[26][window])))
    assert low_drop < -0.5
    assert high_drop > -0.3
    # And for a GV where wax never fully melts, WA matches TA.
    ta = figure12_hot_group_temps(grouping_values=(26,), num_servers=1000)
    assert np.nanmax(temps.per_gv[26]) == np.nanmax(ta.per_gv[26])

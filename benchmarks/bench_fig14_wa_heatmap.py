"""Figure 14: VMT-WA heatmaps at GV=20 -- the hot group extends itself.

Paper: at GV=20 (where VMT-TA melts everything prematurely) VMT-WA
extends the hot group once hot-group wax crosses the wax threshold --
visible around hours 20 and 45 -- and keeps melting fresh wax in the
newly added servers while holding the melted ones warm.
"""

import numpy as np
from paper_reference import emit, once

from repro.analysis.experiments import heatmap_experiment
from repro.core.grouping import hot_group_size


def bench_fig14_wa_heatmap(benchmark, capsys):
    result = once(benchmark,
                  lambda: heatmap_experiment("vmt-wa", grouping_value=20.0))

    from repro.analysis.reporting import format_heatmap
    base_size = hot_group_size(20.0, 35.7, 100)
    emit(capsys,
         format_heatmap(result.temp_heatmap,
                        title="Fig. 14a: air temperature, VMT-WA GV=20",
                        vmin=10, vmax=50),
         format_heatmap(result.melt_heatmap,
                        title="Fig. 14b: wax melted, VMT-WA GV=20",
                        vmin=0, vmax=1),
         f"hot group size over time: starts {result.hot_group_size[0]}, "
         f"max {result.hot_group_size.max()} (Eq. 1 base: {base_size})")

    # The group starts at the Eq. 1 size and extends during the peak.
    assert result.hot_group_size[0] == base_size
    assert result.hot_group_size.max() > base_size
    # Extension coincides with the load peaks (hours ~19-21 and ~44-46).
    extended = result.hot_group_size > base_size
    first_extension_h = float(result.times_hours[int(np.argmax(extended))])
    assert 17.0 < first_extension_h < 22.0
    # Wax melts beyond the base group: servers above base_size melt too.
    assert result.melt_heatmap[:, base_size:].max() > 0.3
    # Base-group wax fully melts.
    assert result.melt_heatmap[:, :base_size].max() > 0.95

"""Figure 8: the normalized two-day datacenter load trace.

Paper landmarks: load peaks near hours 20 and 46 (up to 95% server
utilization), troughs near hours 5 and 29, and a roughly 60/40 split
between hot and cold jobs across the five workloads.
"""

from paper_reference import comparison_table, emit, once

from repro.analysis.experiments import figure8_trace


def bench_fig08_trace(benchmark, capsys):
    trace = once(benchmark, lambda: figure8_trace(num_servers=100))

    rows = [
        ("peak hours", "~20 / ~46",
         f"{trace.peak_hours[0]:.1f} / {trace.peak_hours[1]:.1f}"),
        ("trough hours", "~5 / ~29",
         f"{trace.trough_hours[0]:.1f} / {trace.trough_hours[1]:.1f}"),
        ("peak utilization", "95%",
         f"{trace.peak_utilization * 100:.1f}%"),
        ("hot job share", "~60%",
         f"{trace.mean_hot_fraction * 100:.1f}%"),
    ]
    emit(capsys, "Figure 8 -- two-day trace landmarks:",
         comparison_table(["landmark", "paper", "measured"], rows))

    share_rows = [(name, f"{series.sum() / 1e3:,.0f}k job-minutes")
                  for name, series in trace.per_workload.items()]
    emit(capsys, "Per-workload totals (stacked series):",
         comparison_table(["workload", "volume"], share_rows))

    assert abs(trace.peak_hours[0] - 20.0) < 1.0
    assert abs(trace.peak_hours[1] - 46.0) < 1.0
    assert abs(trace.trough_hours[0] - 5.0) < 1.5
    assert abs(trace.trough_hours[1] - 29.0) < 1.5
    assert 0.92 <= trace.peak_utilization <= 1.0
    assert abs(trace.mean_hot_fraction - 0.60) < 0.03
    assert len(trace.per_workload) == 5

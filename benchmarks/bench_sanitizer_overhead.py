"""Sanitizer overhead benchmark: checks="cheap"/"full" vs "off".

Measures, with the :class:`~repro.perf.profiler.TickProfiler`, how much
the invariant sanitizer adds to the tick loop.  The acceptance bar is
**cheap adds < 10% to the instrumented tick-loop time**; full mode is
measured too but is expected (and allowed) to cost more -- it audits
every server elementwise each tick and is meant for CI and debugging,
not for inner-loop sweeps.

Two numbers per level:

* ``tick_loop_overhead`` -- extra instrumented section time relative to
  the ``off`` baseline (the acceptance metric; excludes engine
  dispatch and Python glue so it isolates what the sanitizer adds);
* ``checks_share`` -- the profiler's ``checks`` section as a fraction
  of the level's own tick-loop time.

Results merge into ``BENCH_perf.json`` under ``sanitizer_overhead``,
alongside the scaling numbers from ``bench_perf_scaling.py``.  All
three runs assert bit-identical fingerprints -- the sanitizer reads,
never writes.

Run::

    PYTHONPATH=src python benchmarks/bench_sanitizer_overhead.py
    PYTHONPATH=src python benchmarks/bench_sanitizer_overhead.py \
        --servers 20 --hours 6   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os

from repro.config import TraceConfig, paper_cluster_config
from repro.core.policies import make_scheduler
from repro.cluster.simulation import ClusterSimulation
from repro.perf.profiler import TickProfiler
from repro.perf.timing import interleaved_best

LEVELS = ("off", "cheap", "full")


def profile_level(num_servers: int, hours: float, seed: int, policy: str,
                  checks: str) -> dict:
    """One profiled run; returns section totals and the fingerprint."""
    config = paper_cluster_config(num_servers=num_servers, seed=seed)
    config = config.replace(trace=TraceConfig(duration_hours=hours))
    profiler = TickProfiler()
    sim = ClusterSimulation(config, make_scheduler(policy, config),
                            record_heatmaps=False, profiler=profiler,
                            checks=checks)
    result = sim.run()
    timings = profiler.timings()
    loop_s = sum(t.total_s for t in timings.values())
    checks_s = timings["checks"].total_s if "checks" in timings else 0.0
    return {
        "tick_loop_s": loop_s,
        "checks_s": checks_s,
        "ticks": profiler.ticks,
        "fingerprint": result.fingerprint(),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--servers", type=int, default=100)
    parser.add_argument("--hours", type=float, default=48.0)
    parser.add_argument("--policy", default="vmt-wa")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=3,
                        help="take the fastest of N interleaved runs "
                             "per level")
    parser.add_argument("--out", default="BENCH_perf.json")
    args = parser.parse_args()

    # Interleave the levels round-robin (with one untimed warm-up run
    # each) so machine-speed drift between rounds hits every level
    # alike; timing each level's repeats back-to-back used to let a
    # slow first block report *negative* cheap overhead.
    runs = interleaved_best(
        {level: (lambda level=level: profile_level(
            args.servers, args.hours, args.seed, args.policy, level))
         for level in LEVELS},
        repeats=args.repeats, key="tick_loop_s")
    for level in LEVELS:
        best = runs[level]
        print(f"checks={level}: tick loop {best['tick_loop_s']:.3f} s "
              f"({best['checks_s']:.3f} s in checks) over "
              f"{best['ticks']} ticks")

    fingerprints = {level: runs[level]["fingerprint"] for level in LEVELS}
    identical = len(set(fingerprints.values())) == 1
    base = runs["off"]["tick_loop_s"]
    payload = {
        "num_servers": args.servers,
        "policy": args.policy,
        "repeats": args.repeats,
        "ticks": runs["off"]["ticks"],
        "bit_identical": identical,
        "levels": {},
    }
    for level in LEVELS:
        loop_s = runs[level]["tick_loop_s"]
        payload["levels"][level] = {
            "tick_loop_s": loop_s,
            "checks_s": runs[level]["checks_s"],
            "tick_loop_overhead": loop_s / base - 1.0,
            "checks_share": (runs[level]["checks_s"] / loop_s
                             if loop_s > 0 else 0.0),
        }
    cheap_overhead = payload["levels"]["cheap"]["tick_loop_overhead"]
    print(f"cheap overhead vs off: {cheap_overhead * 100:.1f}% "
          f"(bar: < 10%); full: "
          f"{payload['levels']['full']['tick_loop_overhead'] * 100:.1f}%; "
          f"fingerprints identical: {identical}")

    merged = {}
    if os.path.exists(args.out):
        with open(args.out) as handle:
            merged = json.load(handle)
    merged["cpu_count"] = os.cpu_count()
    merged["sanitizer_overhead"] = payload
    with open(args.out, "w") as handle:
        json.dump(merged, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0 if identical and cheap_overhead < 0.10 else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Extension study: wax-preserving VMT ("raising the melting temperature").

Section III sketches, and leaves as future work, the dual of the paper's
contribution: VMT can also *raise* the apparent melting temperature by
parking hot jobs on already-melted servers and preserving frozen wax "in
anticipation of a very hot peak still to come".

Scenario: a day with a long warm shoulder (utilization ~0.8 from
mid-morning) before the true evening peak.  VMT-TA spends the shoulder
melting its wax and arrives at the peak nearly empty; VMT-Preserve
dilutes the shoulder's heat fleet-wide (melting almost nothing), then
commits the full reserve when the peak arrives.
"""

import numpy as np
from paper_reference import comparison_table, emit, once

from repro import paper_cluster_config, make_scheduler, run_simulation
from repro.workloads.trace import TwoDayTrace

#: Warm-shoulder skeleton: plateau at ~0.8 utilization from 10:00, true
#: peak at 20:00 (and mirrored on day two).
SHOULDER_SHAPE = (
    (0.0, 0.33), (3.0, 0.10), (5.0, 0.00), (8.0, 0.45), (10.0, 0.80),
    (17.0, 0.82), (20.0, 1.00), (21.0, 0.68), (22.0, 0.48), (24.0, 0.26),
    (27.0, 0.06), (29.0, 0.00), (32.0, 0.45), (34.0, 0.80), (43.0, 0.82),
    (46.0, 1.00), (46.5, 0.80), (47.0, 0.58), (48.0, 0.45),
)


def bench_ext_wax_preserve(benchmark, capsys):
    config = paper_cluster_config(num_servers=100, grouping_value=22.0)
    trace = TwoDayTrace(config.trace,
                        shape_points=SHOULDER_SHAPE).generate(100)

    def study():
        rr = run_simulation(config, make_scheduler("round-robin", config),
                            trace=trace, record_heatmaps=False)
        out = {}
        for name in ("vmt-ta", "vmt-wa", "vmt-preserve"):
            result = run_simulation(config, make_scheduler(name, config),
                                    trace=trace, record_heatmaps=False)
            out[name] = (result.peak_reduction_vs(rr) * 100.0,
                         float(result.max_melt_fraction))
        return out

    results = once(benchmark, study)

    rows = [(name, f"{red:.1f}%", f"{melt * 100:.0f}%")
            for name, (red, melt) in results.items()]
    emit(capsys, "Extension -- warm-shoulder day (plateau 0.8 from "
         "10:00, peak at 20:00):",
         comparison_table(["policy", "peak reduction",
                           "max mean melt"], rows))

    # The shoulder exhausts VMT-TA's wax before the peak: ~no benefit.
    assert results["vmt-ta"][0] < 1.0
    # Preservation rescues the scenario and at least matches VMT-WA.
    assert results["vmt-preserve"][0] > results["vmt-ta"][0] + 3.0
    assert results["vmt-preserve"][0] >= results["vmt-wa"][0] - 0.5
    # It does so by melting *less* wax overall, not more: the reduction
    # comes from timing, which is the whole point.
    assert results["vmt-preserve"][1] <= results["vmt-wa"][1] + 0.01

"""Shared helpers and the paper's reference numbers for the benchmarks.

Every benchmark regenerates one of the paper's tables or figures, prints
the measured rows next to the paper's values (bypassing pytest's output
capture so the rows land in the terminal / tee'd log), and asserts the
*shape* claims -- who wins, roughly by how much, where crossovers fall.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.reporting import format_table

#: Figure 13 (VMT-TA) peak cooling load reduction bars, percent.
FIG13_PAPER_BARS = {"round-robin": 0.0, "coolest-first": 0.0,
                    "GV=20": 0.0, "GV=22": 12.8, "GV=24": 8.8}

#: Figure 16 (VMT-WA) peak cooling load reduction bars, percent.
FIG16_PAPER_BARS = {"round-robin": 0.0, "coolest-first": 0.0,
                    "GV=20": 7.0, "GV=22": 12.8, "GV=24": 8.9}

#: Figure 17: wax threshold -> reduction (percent) for VMT-WA, GV=22.
FIG17_PAPER = {0.85: 8.0, 0.90: 11.1, 0.95: 12.8, 0.98: 12.8,
               0.99: 12.8, 1.00: 12.8}

#: Table I: workload -> (per-CPU watts, VMT class).
TABLE1_PAPER = {
    "WebSearch": (37.2, "hot"),
    "DataCaching": (13.5, "cold"),
    "VideoEncoding": (60.9, "hot"),
    "VirusScan": (3.4, "cold"),
    "Clustering": (59.5, "hot"),
}

#: Table II: GV -> (VMT deg C, delta vs PMT).  Note: the paper's mapping
#: is configuration-specific; see the bench and EXPERIMENTS.md notes.
TABLE2_PAPER = {
    20.03: 37.7, 20.14: 36.7, 20.23: 35.7, 20.83: 34.7, 21.25: 33.7,
    21.55: 32.7, 21.69: 31.7, 21.84: 30.7, 23.99: 29.7, 30.75: 28.7,
}

#: Section V-E headline TCO numbers.
TCO_PAPER = {
    "savings_at_12_8pct_usd": 2_690_000.0,
    "savings_at_6pct_usd": 1_260_000.0,
    "additional_servers_at_12_8pct": 7_339,
    "additional_servers_at_6pct": 3_191,
    "additional_servers_per_cluster": 146,
    "cooling_reduction_mw": 3.2,
}

#: Figure 7: VMT-minus-RR cumulative failure gap band after 3 years (%).
FIG7_PAPER_GAP_BAND = (0.4, 0.6)


def emit(capsys, *lines: str) -> None:
    """Print through pytest's capture so the rows reach the terminal."""
    with capsys.disabled():
        print()
        for line in lines:
            print(line)


def comparison_table(headers: Sequence[str],
                     rows: Iterable[Sequence[object]]) -> str:
    """Alias with a name that reads well at call sites."""
    return format_table(headers, rows)


def once(benchmark, func):
    """Run ``func`` exactly once under the benchmark timer."""
    return benchmark.pedantic(func, rounds=1, iterations=1)

"""CI guard: kernel changes must come with a re-measured BENCH_perf.json.

The fast-path kernels exist for one number — the measured speedup in
``BENCH_perf.json`` — so a commit that touches the tick engines while
leaving the benchmark record untouched is either unmeasured or quoting
stale numbers.  This script fails (exit 1) when the last commit
touching the watched performance-critical paths is *newer* than the
last commit touching ``BENCH_perf.json``; "newer" is ancestry, not
timestamps, so rebases and merges behave.

Working-tree state is checked too: locally, uncommitted kernel edits
without an uncommitted ``BENCH_perf.json`` fail the same way.

The check is deliberately tolerant of missing git history (shallow
clones, tarball checkouts): anything that prevents answering the
question exits 0 with a note, because a freshness guard that breaks CI
for infrastructure reasons gets deleted, not fixed.

Run::

    PYTHONPATH=src python benchmarks/check_bench_freshness.py
"""

from __future__ import annotations

import argparse
import subprocess
import sys

#: Paths whose changes invalidate the benchmark record.
WATCHED = (
    "src/repro/kernel",
    "src/repro/perf",
    "src/repro/cluster/simulation.py",
    "src/repro/cluster/metrics.py",
    "benchmarks/bench_perf_scaling.py",
)

BENCH = "BENCH_perf.json"


def _git(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(["git", *argv], capture_output=True, text=True)


def last_commit(paths) -> str:
    """Hash of the newest commit touching ``paths`` ('' when none)."""
    proc = _git("log", "-1", "--format=%H", "--", *paths)
    if proc.returncode != 0:
        raise RuntimeError(proc.stderr.strip())
    return proc.stdout.strip()


def dirty(paths) -> list:
    """Watched paths with uncommitted (staged or not) modifications."""
    proc = _git("status", "--porcelain", "--", *paths)
    if proc.returncode != 0:
        raise RuntimeError(proc.stderr.strip())
    return [line[3:] for line in proc.stdout.splitlines() if line.strip()]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.parse_args()

    if _git("rev-parse", "--git-dir").returncode != 0:
        print("not a git checkout; skipping freshness check")
        return 0
    try:
        kernel_commit = last_commit(WATCHED)
        bench_commit = last_commit([BENCH])
        dirty_kernel = dirty(WATCHED)
        dirty_bench = dirty([BENCH])
    except RuntimeError as exc:
        print(f"git history unavailable ({exc}); skipping freshness check")
        return 0

    if not kernel_commit:
        print("no commits touch the watched perf paths; nothing to check")
        return 0

    if dirty_kernel and not dirty_bench:
        print("STALE: uncommitted changes under the perf-critical paths "
              f"({', '.join(sorted(dirty_kernel)[:5])}) without a "
              f"regenerated {BENCH}.")
        print("Run: PYTHONPATH=src python benchmarks/bench_perf_scaling.py")
        return 1

    if not bench_commit:
        print(f"STALE: the watched perf paths are committed but {BENCH} "
              "never was.")
        return 1

    # Fresh iff the newest kernel-touching commit is an ancestor of (or
    # equal to) the newest bench-touching commit.
    ancestry = _git("merge-base", "--is-ancestor",
                    kernel_commit, bench_commit)
    if ancestry.returncode == 0:
        print(f"fresh: {BENCH} ({bench_commit[:12]}) covers the last "
              f"perf-path change ({kernel_commit[:12]})")
        return 0
    if ancestry.returncode == 1:
        print(f"STALE: perf paths changed in {kernel_commit[:12]} after "
              f"{BENCH} was last regenerated in {bench_commit[:12]}.")
        print("Run: PYTHONPATH=src python benchmarks/bench_perf_scaling.py"
              " && PYTHONPATH=src python "
              "benchmarks/bench_sanitizer_overhead.py")
        return 1
    print("git ancestry query failed "
          f"({ancestry.stderr.strip()}); skipping freshness check")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

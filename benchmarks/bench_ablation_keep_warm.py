"""Ablation: VMT-WA's keep-warm margin and release taper.

Two design choices in our VMT-WA implementation deserve scrutiny:

* the **keep-warm margin** (how far above the melt point melted servers
  are held) -- too high wastes hot jobs that could melt fresh wax in the
  extension servers, too low risks mid-peak refreeze;
* the **load-trend gate** (keep-warm engages only while utilization is
  high, then tapers off) -- TTS requires the wax to refreeze overnight
  to release its stored energy; a keep-warm that never disengages holds
  the wax molten through the night and forfeits the next day's storage
  capacity entirely.

The margin is evaluated at GV=20 (where the hot group fully melts and
keep-warm carries the run); the gate at both GV=20 and GV=22.
"""

from paper_reference import comparison_table, emit, once

from repro import paper_cluster_config, run_simulation
from repro.core import RoundRobinScheduler, VMTWaxAwareScheduler


def _reduction(rr, *, grouping_value, margin_c=0.4, gated=True):
    config = paper_cluster_config(num_servers=100,
                                  grouping_value=grouping_value)
    if gated:
        scheduler = VMTWaxAwareScheduler(config,
                                         keep_warm_margin_c=margin_c)
    else:
        # Keep-warm never disengages: thresholds below any utilization.
        scheduler = VMTWaxAwareScheduler(
            config, keep_warm_margin_c=margin_c,
            keep_warm_min_utilization=0.0,
            keep_warm_release_utilization=-1.0)
    result = run_simulation(config, scheduler, record_heatmaps=False)
    return result.peak_reduction_vs(rr) * 100.0


def bench_ablation_keep_warm(benchmark, capsys):
    base = paper_cluster_config(num_servers=100)
    rr = run_simulation(base, RoundRobinScheduler(base),
                        record_heatmaps=False)

    def study():
        margins = {}
        for margin in (0.2, 0.4, 1.0, 2.0):
            margins[margin] = _reduction(rr, grouping_value=20.0,
                                         margin_c=margin)
        gates = {}
        for gv in (20.0, 22.0):
            gates[gv] = (_reduction(rr, grouping_value=gv),
                         _reduction(rr, grouping_value=gv, gated=False))
        return margins, gates

    margins, gates = once(benchmark, study)

    rows = [(f"GV=20, margin={m:.1f} C", f"{v:.1f}%")
            for m, v in margins.items()]
    for gv, (gated, always_on) in gates.items():
        rows.append((f"GV={gv:g}, load-trend gate on", f"{gated:.1f}%"))
        rows.append((f"GV={gv:g}, keep-warm ALWAYS ON",
                     f"{always_on:.1f}%"))
    emit(capsys, "Ablation -- VMT-WA keep-warm design "
         "(peak reduction vs round robin):",
         comparison_table(["variant", "reduction"], rows))

    # Small margins free more load for fresh melting.
    assert margins[0.4] >= margins[2.0]
    # Every margin keeps a meaningful reduction.
    assert all(v > 3.0 for v in margins.values())
    # The gate is load-bearing: holding wax molten overnight forfeits the
    # refreeze and most of the next day's storage capacity.
    for gv, (gated, always_on) in gates.items():
        assert gated > always_on + 2.0

"""Figure 19: VMT-TA under inlet temperature variation (5 x 100 servers).

Paper: at the no-variation optimum (GV=22), zero variation is best;
variation pushes the optimal GV upward ("better to miss high than miss
low") and reduces the attainable peak reduction.

Our reproduction preserves those shapes with a steeper magnitude
penalty than the paper reports (see EXPERIMENTS.md): the calibrated
hot-group margin over the melt point is ~3 deg C, so a 1-2 deg C inlet
sigma perturbs melt timing proportionally more than in the authors'
model.
"""

from paper_reference import comparison_table, emit, once

from repro.analysis.experiments import figure19_inlet_variation

GVS = tuple(range(16, 29, 2))


def bench_fig19_ta_inlet_variation(benchmark, capsys):
    sweeps = once(benchmark,
                  lambda: figure19_inlet_variation(
                      grouping_values=GVS, num_servers=100,
                      seeds=range(5)))

    rows = []
    for i, gv in enumerate(GVS):
        rows.append((f"{gv:g}",
                     *(f"{sweeps[s].reductions['vmt-ta'][i] * 100:.1f}%"
                       for s in (0.0, 1.0, 2.0))))
    emit(capsys, "Figure 19 -- VMT-TA reduction vs GV under inlet "
         "variation:",
         comparison_table(["GV", "stdev=0", "stdev=1", "stdev=2"], rows))

    best = {stdev: sweeps[stdev].best("vmt-ta")
            for stdev in (0.0, 1.0, 2.0)}
    # No variation is best at (and near) the nominal optimum.
    assert best[0.0][1] > best[1.0][1] > best[2.0][1]
    # Variation pushes the optimal GV upward.
    assert best[1.0][0] >= best[0.0][0]
    assert best[2.0][0] >= best[0.0][0]
    # VMT remains effective under variation (nonzero best reduction).
    assert best[2.0][1] > 0.02

"""Figure 13: VMT-TA cooling loads and peak reduction bars (1000 servers).

Paper bars: round-robin 0.0, coolest-first 0.0, GV=20 0.0 (melts out too
soon), GV=22 -12.8 (best), GV=24 -8.8 (melts too late, ~two-thirds as
good).
"""

import numpy as np
from paper_reference import FIG13_PAPER_BARS, comparison_table, emit, once

from repro.analysis.experiments import figure13_cooling_loads


def bench_fig13_ta_cooling_load(benchmark, capsys):
    study = once(benchmark,
                 lambda: figure13_cooling_loads(num_servers=1000))

    rows = [(label, f"{FIG13_PAPER_BARS[label]:.1f}%",
             f"{study.reductions_percent[label]:.1f}%")
            for label in FIG13_PAPER_BARS]
    emit(capsys, "Figure 13 -- peak cooling load reduction (VMT-TA):",
         comparison_table(["policy", "paper", "measured"], rows),
         f"cluster peak cooling load (round robin): "
         f"{study.series_kw['round-robin'].max():.0f} kW")

    measured = study.reductions_percent
    # Baselines and the too-low GV give ~nothing.
    assert abs(measured["coolest-first"]) < 1.0
    assert measured["GV=20"] < 2.0
    # GV=22 is the winner, near the paper's 12.8%.
    assert 10.0 < measured["GV=22"] < 15.0
    # GV=24 keeps a partial benefit, below GV=22.
    assert 6.0 < measured["GV=24"] < measured["GV=22"]
    # The GV=22 load series is flattened: its peak-hour load sits well
    # below round robin's at the same tick.
    peak_tick = int(np.argmax(study.series_kw["round-robin"]))
    assert study.series_kw["GV=22"][peak_tick] < \
        study.series_kw["round-robin"][peak_tick] * 0.90

"""Figure 9: round-robin heatmaps -- temperatures but no melting.

Paper: under round robin the temperature field tracks the diurnal load
(peaks near hours 20 and 46) with visible server-to-server spread, yet
no wax melts because neither the average nor individual servers stay hot
enough.
"""

import numpy as np
from paper_reference import emit, once

from repro.analysis.experiments import heatmap_experiment
from repro.analysis.reporting import format_heatmap


def bench_fig09_round_robin_heatmap(benchmark, capsys):
    result = once(benchmark, lambda: heatmap_experiment("round-robin"))

    emit(capsys,
         format_heatmap(result.temp_heatmap,
                        title="Fig. 9a: air temperature, round robin",
                        vmin=10, vmax=50),
         format_heatmap(result.melt_heatmap,
                        title="Fig. 9b: wax melted, round robin",
                        vmin=0, vmax=1),
         f"max per-server melt: {result.melt_heatmap.max() * 100:.1f}% "
         f"(paper: 0%)")

    # Temperature peaks align with the load peaks.
    hottest_tick = int(np.argmax(result.mean_temp_c))
    assert abs(result.times_hours[hottest_tick] % 26 - 20.0) < 2.0
    # Servers differ (the RR spread of Fig. 9a)...
    peak_tick = int(np.argmax(result.cooling_load_w))
    assert result.temp_heatmap[peak_tick].std() > 0.3
    # ...but essentially no wax melts (Fig. 9b).
    assert result.max_melt_fraction < 0.02
    assert result.mean_temp_c.max() < 35.7

"""Measure the fleet layer's cost over the multi-cluster baseline.

The fleet subsystem promises that heterogeneity is *pay-for-what-you-
use*: a homogeneous fleet takes the exact ``run_datacenter`` path
(fingerprint-identical results, same ExperimentRunner fan-out), so its
overhead over the multi-cluster study should be pricing only --
a few array passes per site.  Routed fleets run serially in-process
(traces are not picklable), so their wall time is bounded by the sum
of the site runs plus the router's tick loop.

This benchmark measures both, asserts the homogeneous identity, and
merges the numbers into ``BENCH_perf.json`` under ``"fleet"``.  The
exit status gates CI: nonzero when the fingerprints diverge or the
homogeneous overhead exceeds the budget.

Run::

    PYTHONPATH=src python benchmarks/bench_fleet.py
    PYTHONPATH=src python benchmarks/bench_fleet.py \
        --servers 10 --hours 8 --out /tmp/bench.json     # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.cluster.multi import run_datacenter
from repro.config import SimulationConfig, TraceConfig
from repro.fleet import FleetSpec, demo_fleet, run_fleet


def measure(num_servers: int, hours: float, sites: int, seed: int,
            stagger: float, repeats: int) -> dict:
    config = SimulationConfig(
        num_servers=num_servers, seed=seed,
        trace=TraceConfig(duration_hours=hours))

    def best(fn):
        walls = []
        result = None
        for _ in range(repeats):
            start = time.perf_counter()
            result = fn()
            walls.append(time.perf_counter() - start)
        return min(walls), result

    datacenter_wall, golden = best(
        lambda: run_datacenter(config, sites, policy="vmt-ta",
                               stagger_hours=stagger))
    homogeneous_wall, fleet = best(
        lambda: run_fleet(FleetSpec.homogeneous(
            config, sites, policy="vmt-ta", stagger_hours=stagger)))
    demo_wall, demo = best(
        lambda: run_fleet(demo_fleet(config, policies=("vmt-ta",),
                                     fleet_policy_name="price-arbitrage",
                                     stagger_hours=stagger),
                          checks="cheap"))

    golden_fp = [r.fingerprint() for r in golden.cluster_results]
    fleet_fp = [r.fingerprint() for r in fleet.cluster_results]
    return {
        "num_servers": num_servers,
        "hours": hours,
        "sites": sites,
        "repeats": repeats,
        "datacenter_wall_s": datacenter_wall,
        "homogeneous_fleet_wall_s": homogeneous_wall,
        "pricing_overhead": homogeneous_wall / datacenter_wall - 1.0,
        "heterogeneous_demo_wall_s": demo_wall,
        "bit_identical": fleet_fp == golden_fp,
        "fingerprints": fleet_fp,
        "demo_bill_usd": demo.total_energy_cost_usd,
        "demo_carbon_kg": demo.total_carbon_kg,
        "demo_moved_job_cores": demo.moved_job_cores,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--servers", type=int, default=20)
    parser.add_argument("--hours", type=float, default=24.0)
    parser.add_argument("--sites", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--stagger", type=float, default=8.0)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--max-overhead", type=float, default=0.5,
                        help="largest tolerated homogeneous-fleet "
                             "overhead over run_datacenter (fraction)")
    parser.add_argument("--out", default="BENCH_perf.json")
    args = parser.parse_args()

    fleet = measure(args.servers, args.hours, args.sites, args.seed,
                    args.stagger, args.repeats)
    print(json.dumps(fleet, indent=2))

    merged = {}
    if os.path.exists(args.out):
        with open(args.out) as handle:
            merged = json.load(handle)
    merged["fleet"] = fleet
    with open(args.out, "w") as handle:
        json.dump(merged, handle, indent=2)
        handle.write("\n")
    print(f"\nmerged under 'fleet' into {args.out}")

    if not fleet["bit_identical"]:
        print("FAIL: homogeneous fleet diverged from run_datacenter")
        return 1
    if fleet["pricing_overhead"] > args.max_overhead:
        print(f"FAIL: homogeneous fleet overhead "
              f"{fleet['pricing_overhead']:.1%} exceeds "
              f"{args.max_overhead:.0%} budget")
        return 1
    print(f"fleet bench OK: bit-identical, pricing overhead "
          f"{fleet['pricing_overhead']:.1%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""CI smoke test for the scenario suite and its fault tolerance.

Runs the whole scenario library against every policy at reduced scale,
with one worker process deliberately SIGKILLed mid-suite (via the
``REPRO_KILL_RUN`` crash-injection hook).  The suite must still finish:
the killed run is retried serially by the parent, every cell lands in
the report, and every metamorphic check holds.  Exit status is nonzero
if any run failed or any check was violated -- i.e. if the suite is
anything short of fully recovered and fully verified.

Usage::

    python benchmarks/scenario_suite_smoke.py [--servers N] [--hours H]
        [--workers W] [--timeout S] [--kill-run LABEL]
"""

import argparse
import os
import sys

from repro.core import SCHEDULER_NAMES
from repro.scenarios import run_suite, scenario_names


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--servers", type=int, default=12)
    parser.add_argument("--hours", type=float, default=24.0)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="per-run wall-clock budget, seconds")
    parser.add_argument("--kill-run", default="heat-wave:vmt-ta",
                        help="suite label whose worker is SIGKILLed "
                             "('' disables the crash injection)")
    args = parser.parse_args()

    if args.kill_run:
        os.environ["REPRO_KILL_RUN"] = args.kill_run
        print(f"crash injection armed: worker running "
              f"{args.kill_run!r} will be SIGKILLed")

    report = run_suite(num_servers=args.servers,
                       duration_hours=args.hours,
                       max_workers=args.workers,
                       timeout_s=args.timeout)
    print(report.to_text())
    print()

    failures = 0
    expected = len(scenario_names()) * len(SCHEDULER_NAMES)
    if len(report.records) != expected:
        print(f"expected {expected} scenario cells, "
              f"got {len(report.records)}")
        failures += 1
    if args.kill_run:
        killed = [r for r in report.records
                  if f"{r.scenario}:{r.policy}" == args.kill_run]
        if not killed:
            print(f"kill target {args.kill_run!r} missing from report")
            failures += 1
        elif not killed[0].completed:
            print(f"kill target {args.kill_run!r} was not recovered: "
                  f"{killed[0].failure}")
            failures += 1
        else:
            print(f"kill target {args.kill_run!r} recovered by serial "
                  f"retry and completed")
    if not report.passed:
        print(f"suite not clean: {len(report.failures)} failures, "
              f"{len(report.violations)} check violations")
        failures += 1

    if failures:
        print(f"\nFAILED: {failures} suite-level check(s) failed")
        return 1
    print(f"\nscenario suite smoke OK: {len(report.records)} cells "
          f"completed and verified despite a SIGKILLed worker")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 16: VMT-WA cooling loads and peak reduction bars (1000 servers).

Paper bars: round-robin 0.0, coolest-first 0.0, GV=20 -7.0 (the group
extension rescues the too-low GV), GV=22 -12.8, GV=24 -8.9.
"""

from paper_reference import FIG16_PAPER_BARS, comparison_table, emit, once

from repro.analysis.experiments import (figure13_cooling_loads,
                                        figure16_cooling_loads)


def bench_fig16_wa_cooling_load(benchmark, capsys):
    study = once(benchmark,
                 lambda: figure16_cooling_loads(num_servers=1000))

    rows = [(label, f"{FIG16_PAPER_BARS[label]:.1f}%",
             f"{study.reductions_percent[label]:.1f}%")
            for label in FIG16_PAPER_BARS]
    emit(capsys, "Figure 16 -- peak cooling load reduction (VMT-WA):",
         comparison_table(["policy", "paper", "measured"], rows))

    measured = study.reductions_percent
    assert abs(measured["coolest-first"]) < 1.0
    # GV=22 remains the best, near the paper's 12.8%.
    assert 10.0 < measured["GV=22"] < 15.0
    # The WA rescue at GV=20: a meaningful reduction where TA got ~zero.
    ta = figure13_cooling_loads(grouping_values=(20,), num_servers=1000)
    assert measured["GV=20"] > ta.reductions_percent["GV=20"] + 3.0
    assert measured["GV=20"] > 4.0
    # GV=24 matches TA closely (the wax never fully melts there).
    ta24 = figure13_cooling_loads(grouping_values=(24,), num_servers=1000)
    assert abs(measured["GV=24"] - ta24.reductions_percent["GV=24"]) < 1.0

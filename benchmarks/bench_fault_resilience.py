"""Fault resilience: every policy survives a mid-peak outage.

Not a paper figure -- a robustness benchmark for the fault-injection
subsystem.  The scenario is the paper's worst case for VMT: 10% of the
hot group dies right at the hour-20 load peak (with repair two hours
later) while the cooling plant is derated to 85% of nominal.  Every
policy must keep placing the full demand on the survivors, re-place the
displaced jobs within one scheduling tick, and keep every CPU below the
throttle point.
"""

import dataclasses

from paper_reference import comparison_table, emit, once

from repro.cluster.simulation import run_simulation
from repro.config import TraceConfig, paper_cluster_config
from repro.core.policies import make_scheduler
from repro.faults.scenarios import (cooling_derate,
                                    kill_hot_group_fraction,
                                    merge_scenarios)
from repro.thermal.throttling import CPUThermalModel

POLICIES = ("round-robin", "coolest-first", "vmt-ta", "vmt-wa")
NUM_SERVERS = 40
KILL_FRACTION = 0.10
KILL_HOUR = 20.0
REPAIR_HOURS = 2.0
DERATE_FACTOR = 0.85


def _run_all():
    base = paper_cluster_config(num_servers=NUM_SERVERS,
                                grouping_value=22.0)
    base = dataclasses.replace(
        base, trace=TraceConfig(duration_hours=24.0))
    faults = merge_scenarios(
        kill_hot_group_fraction(base, KILL_FRACTION, KILL_HOUR,
                                repair_after_hours=REPAIR_HOURS),
        cooling_derate(DERATE_FACTOR, KILL_HOUR,
                       restore_after_hours=REPAIR_HOURS),
    )
    config = dataclasses.replace(base, faults=faults)
    return {policy: run_simulation(config,
                                   make_scheduler(policy, config),
                                   record_heatmaps=False)
            for policy in POLICIES}


def bench_fault_resilience(benchmark, capsys):
    results = once(benchmark, _run_all)

    rows = []
    for policy, result in results.items():
        rows.append((policy,
                     f"{result.peak_cooling_load_w / 1e3:.2f}",
                     f"{result.min_availability * 100:.1f}%",
                     f"{result.total_displaced_jobs}",
                     f"{result.mean_recovery_time_s / 60.0:.1f} min",
                     f"{float(result.max_cpu_temp_c.max()):.1f}"))
    emit(capsys, "Fault resilience -- 10% hot-group outage at the peak:",
         comparison_table(["policy", "peak cooling (kW)", "min avail",
                           "displaced", "mean recovery", "max cpu (C)"],
                          rows))

    throttle_c = CPUThermalModel().throttle_temp_c
    step_s = 60.0
    for policy, result in results.items():
        # The outage is visible: availability dips by the killed share...
        assert result.min_availability < 1.0, policy
        # ...and recovers after repair (the run ends fully available).
        assert result.availability[-1] == 1.0, policy
        # Jobs running on the killed servers were displaced and re-placed
        # within a single scheduling tick.
        assert result.total_displaced_jobs > 0, policy
        assert result.mean_recovery_time_s <= step_s, policy
        # Graceful degradation, not thermal failure: no CPU throttles
        # even with warmer supply air and a denser surviving fleet.
        assert float(result.max_cpu_temp_c.max()) < throttle_c, policy

    # Dead servers draw no power, so the outage must not *raise* any
    # policy's peak IT power above the fleet's nameplate.
    for policy, result in results.items():
        nameplate = NUM_SERVERS * results[policy].config.server.peak_power_w
        assert float(result.it_power_w.max()) <= nameplate, policy

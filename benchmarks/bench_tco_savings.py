"""Section V-E: TCO benefits of the measured peak cooling load reduction.

Paper: at 12.8% the 25 MW datacenter's peak cooling load drops 3.2 MW,
worth $2.69M over the cooling system's life, or 7,339 extra servers
(146 per cluster); the conservative 6% plan is worth $1.26M or 3,191
servers; matching VMT with low-melt n-paraffin and passive TTS would
cost on the order of $10M.
"""

from paper_reference import TCO_PAPER, comparison_table, emit, once

from repro.analysis.experiments import tco_analysis


def bench_tco_savings(benchmark, capsys):
    study = once(benchmark, lambda: tco_analysis(num_servers=1000))

    rows = [
        ("measured peak reduction", "12.8%",
         f"{study.measured_reduction * 100:.1f}%"),
        ("peak cooling reduction", "3.2 MW",
         f"{study.impact.cooling_reduction_w / 1e6:.1f} MW"),
        ("cooling savings", "$2,690,000",
         f"${study.savings.gross_cooling_savings_usd:,.0f}"),
        ("additional servers", "7,339",
         f"{study.impact.additional_servers:,}"),
        ("per cluster", "146",
         f"{study.impact.additional_servers_per_cluster}"),
        ("conservative savings (6%)", "$1,260,000",
         f"${study.conservative_savings.gross_cooling_savings_usd:,.0f}"),
        ("conservative servers (6%)", "3,191",
         f"{study.conservative_impact.additional_servers:,}"),
        ("n-paraffin TTS alternative", "~$10,000,000",
         f"${study.n_paraffin_cost_usd:,.0f}"),
    ]
    emit(capsys, "Section V-E -- TCO benefits at datacenter scale "
         "(25 MW, 50,000 servers):",
         comparison_table(["quantity", "paper", "measured"], rows))

    # The measured cluster reduction lands in the paper's band...
    assert 0.10 < study.measured_reduction < 0.15
    # ...and the TCO arithmetic at the paper's 12.8% matches exactly.
    from repro.cluster.datacenter import Datacenter
    from repro.tco.model import TCOModel
    exact = TCOModel().cooling_savings_usd(25e6, 0.128)
    assert abs(exact - TCO_PAPER["savings_at_12_8pct_usd"]) < 5_000
    impact = Datacenter().impact_of(0.128)
    assert impact.additional_servers == \
        TCO_PAPER["additional_servers_at_12_8pct"]
    assert impact.additional_servers_per_cluster == \
        TCO_PAPER["additional_servers_per_cluster"]
    conservative = Datacenter().impact_of(0.06)
    assert conservative.additional_servers == \
        TCO_PAPER["additional_servers_at_6pct"]
    # n-paraffin alternative is order-$10M.
    assert 5e6 < study.n_paraffin_cost_usd < 2e7

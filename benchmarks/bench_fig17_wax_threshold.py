"""Figure 17: peak reduction vs the VMT-WA wax threshold (GV=22).

Paper: 8.0 / 11.1 / 12.8 / 12.8 / 12.8 / 12.8 percent for thresholds
0.85 / 0.90 / 0.95 / 0.98 / 0.99 / 1.00 -- maximum reduction is achieved
at 0.95 and above, so the threshold can be set as low as 0.95 without a
noticeable loss in capacity.
"""

from paper_reference import FIG17_PAPER, comparison_table, emit, once

from repro.analysis.experiments import figure17_wax_threshold


def bench_fig17_wax_threshold(benchmark, capsys):
    sweep = once(benchmark, lambda: figure17_wax_threshold(num_servers=100))

    rows = [(f"{threshold:.2f}", f"{FIG17_PAPER[threshold]:.1f}%",
             f"{measured:.1f}%")
            for threshold, measured in zip(sweep.thresholds,
                                           sweep.reductions_percent)]
    emit(capsys, "Figure 17 -- reduction vs wax threshold (VMT-WA, GV=22):",
         comparison_table(["threshold", "paper", "measured"], rows))

    by_threshold = dict(zip(sweep.thresholds, sweep.reductions_percent))
    # Low thresholds flag servers melted too early and lose reduction.
    assert by_threshold[0.85] < by_threshold[0.98] - 2.0
    assert by_threshold[0.90] < by_threshold[0.98] + 0.5
    # The plateau: >= 0.95 all reach the maximum (within half a point).
    plateau = [by_threshold[t] for t in (0.95, 0.98, 0.99, 1.00)]
    assert max(plateau) - min(plateau) < 0.5
    assert 10.0 < by_threshold[0.98] < 15.0

"""Figure 20: VMT-WA under inlet temperature variation (5 x 100 servers).

Paper: same shape as Fig. 19 but VMT-WA is "much more robust with
respect to the choice of GV" -- and still reaches a sizable reduction
even at stdev=2.  Our magnitudes are steeper than the paper's (see
EXPERIMENTS.md) but the robustness ordering holds.
"""

import numpy as np
from paper_reference import comparison_table, emit, once

from repro.analysis.experiments import (figure19_inlet_variation,
                                        figure20_inlet_variation)

GVS = tuple(range(16, 29, 2))


def bench_fig20_wa_inlet_variation(benchmark, capsys):
    sweeps = once(benchmark,
                  lambda: figure20_inlet_variation(
                      grouping_values=GVS, num_servers=100,
                      seeds=range(5)))

    rows = []
    for i, gv in enumerate(GVS):
        rows.append((f"{gv:g}",
                     *(f"{sweeps[s].reductions['vmt-wa'][i] * 100:.1f}%"
                       for s in (0.0, 1.0, 2.0))))
    emit(capsys, "Figure 20 -- VMT-WA reduction vs GV under inlet "
         "variation:",
         comparison_table(["GV", "stdev=0", "stdev=1", "stdev=2"], rows))

    best = {stdev: sweeps[stdev].best("vmt-wa")
            for stdev in (0.0, 1.0, 2.0)}
    # Variation reduces the attainable peak and shifts the optimum up.
    assert best[0.0][1] > best[2.0][1]
    assert best[1.0][0] >= best[0.0][0]
    # WA stays useful under the heaviest variation the paper tests.
    assert best[2.0][1] > 0.02

    # Robustness vs TA below the optimum: WA's low-GV floor beats TA's.
    ta = figure19_inlet_variation(grouping_values=(16, 18, 20),
                                  num_servers=100, seeds=range(3),
                                  stdevs=(1.0,))
    wa_low = sweeps[1.0].reductions["vmt-wa"][:3]
    ta_low = ta[1.0].reductions["vmt-ta"]
    assert np.mean(wa_low) > np.mean(ta_low)

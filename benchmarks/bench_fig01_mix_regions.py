"""Figure 1: TTS/VMT/neither regions for six two-workload mixtures.

The paper's point: TTS alone only works in a narrow band of mixtures
(blended exhaust above the melt point); VMT greatly expands the useful
range by concentrating the hot share.  We regenerate the six panels and
assert each panel's region structure.
"""

from paper_reference import comparison_table, emit, once

from repro.analysis.regions import MixRegion, all_figure1_panels


def bench_fig01_mix_regions(benchmark, capsys):
    panels = once(benchmark, all_figure1_panels)

    rows = []
    for panel in panels:
        for region, start, end in panel.region_spans():
            rows.append((panel.title, f"{start:.0f}..{end:.0f}%",
                         region.value))
    emit(capsys, "Figure 1 -- mixture regions vs work ratio "
         "(share of first workload):",
         comparison_table(["mixture", "work ratio", "region"], rows))

    assert len(panels) == 6
    titles = {p.title for p in panels}
    assert "DataCaching-WebSearch Mix" in titles

    for panel in panels:
        regions = set(panel.regions)
        hot_solo = [w for w in (panel.first, panel.second) if w.is_hot]
        if len(hot_solo) == 2:
            # Two hot workloads (Clustering-Video): TTS works everywhere.
            assert regions == {MixRegion.TTS}
        else:
            # Mixed panels show the VMT band the paper highlights.
            assert MixRegion.NEEDS_VMT in regions
    # Panels pairing a hot and a cold workload end in 'Neither' when the
    # cold workload dominates.
    caching_search = panels[0]
    assert caching_search.regions[-1] is MixRegion.NEITHER

    # Exhaust temperatures stay within the figure's 20-50 C axis.
    for panel in panels:
        assert panel.exhaust_temps_c.min() > 20.0
        assert panel.exhaust_temps_c.max() < 50.0

"""Performance scaling benchmark: tick rate per backend, parallel speedup.

Unlike the ``bench_fig*`` files (pytest-benchmark reproductions of the
paper's figures), this is a standalone script measuring the simulator
itself:

* **tick rate** -- ticks/second of one full simulation run, measured
  for both tick engines (``backend="reference"`` and ``"fast"``) with
  the fingerprints asserted bit-identical, plus the resulting speedup;
* **paper scale** -- the fast backend at the paper's full 1,000-server
  cluster over a two-day trace (the "sweep point" a laptop study
  iterates on), with its wall-clock recorded against a 10 s target;
* **sweep wall-clock** -- a GV sweep through the
  :class:`~repro.perf.runner.ExperimentRunner` run serially, through
  the process pool, and through the thread pool (threads share the
  parent's read-only trace arrays, so they pair well with the fast
  backend's release of the GIL inside numpy).

All timings follow :mod:`repro.perf.timing`: one untimed warm-up per
case, then best-of-``--repeats`` with the cases interleaved round-robin
so machine-speed drift cannot bias one backend's block of runs.

Results go to ``BENCH_perf.json``.  Parallel speedup is only meaningful
with real cores: the JSON records ``cpu_count`` so a 1-core container
reporting ~1x is legible as an environment limit, not a regression.
The exit status is the CI gate: nonzero when the backends disagree on a
single bit, when a sweep mode changes a result, or when the measured
fast-vs-reference speedup falls below ``--min-speedup``.

Run::

    PYTHONPATH=src python benchmarks/bench_perf_scaling.py
    PYTHONPATH=src python benchmarks/bench_perf_scaling.py \
        --servers 20 --hours 6 --points 4 --workers 2 \
        --repeats 2 --paper-servers 0 --min-speedup 3.0   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os

from repro.analysis.sweep import gv_sweep
from repro.config import TraceConfig, paper_cluster_config
from repro.core.policies import make_scheduler
from repro.cluster.simulation import ClusterSimulation
from repro.perf.cache import clear_shared_cache
from repro.perf.timing import interleaved_best, time_call

BACKENDS = ("reference", "fast")


def run_once(num_servers: int, hours: float, seed: int,
             backend: str) -> dict:
    """Wall-clock one serial run; return ticks/sec and the fingerprint."""
    config = paper_cluster_config(num_servers=num_servers, seed=seed)
    config = config.replace(trace=TraceConfig(duration_hours=hours))
    sim = ClusterSimulation(config, make_scheduler("vmt-ta", config),
                            record_heatmaps=False, backend=backend)
    ticks = sim.trace.num_steps
    elapsed, result = time_call(sim.run)
    return {
        "wall_s": elapsed,
        "ticks": ticks,
        "ticks_per_sec": ticks / elapsed,
        "fingerprint": result.fingerprint(),
        "kernel_path": sim.kernel_path,
    }


def measure_tick_rate(num_servers: int, hours: float, seed: int,
                      backends: tuple, repeats: int) -> dict:
    """Best-of-N tick rate per backend, interleaved, plus the speedup."""
    best = interleaved_best(
        {backend: (lambda backend=backend: run_once(
            num_servers, hours, seed, backend))
         for backend in backends},
        repeats=repeats, key="wall_s")
    payload = {
        "num_servers": num_servers,
        "hours": hours,
        "repeats": repeats,
        "backends": best,
    }
    if len(backends) == 2:
        ref, fast = best["reference"], best["fast"]
        payload["speedup"] = ref["wall_s"] / fast["wall_s"]
        payload["bit_identical"] = (
            ref["fingerprint"] == fast["fingerprint"])
    return payload


def measure_paper_scale(num_servers: int, hours: float, seed: int,
                        repeats: int) -> dict:
    """The fast backend at full paper scale, against a 10 s target."""
    best = interleaved_best(
        {"fast": lambda: run_once(num_servers, hours, seed, "fast")},
        repeats=repeats, key="wall_s")["fast"]
    return {
        "num_servers": num_servers,
        "hours": hours,
        "repeats": repeats,
        "target_s": 10.0,
        "under_target": best["wall_s"] < 10.0,
        **best,
    }


def measure_sweep(num_servers: int, points: int, workers: int, seed: int,
                  backend: str, repeats: int) -> dict:
    """Time one GV sweep serially vs the process and thread pools."""
    gvs = [14.0 + 2.0 * i for i in range(points)]

    def run_mode(max_workers, workers_mode):
        clear_shared_cache()
        elapsed, sweep = time_call(lambda: gv_sweep(
            gvs, policies=("vmt-ta",), num_servers=num_servers,
            seed=seed, max_workers=max_workers,
            workers_mode=workers_mode, backend=backend))
        return {"wall_s": elapsed, "sweep": sweep}

    best = interleaved_best(
        {
            "serial": lambda: run_mode(1, "process"),
            "process": lambda: run_mode(workers, "process"),
            "thread": lambda: run_mode(workers, "thread"),
        },
        repeats=repeats, key="wall_s")
    serial = best["serial"]
    identical = all(
        (serial["sweep"].reductions[p] ==
         best[mode]["sweep"].reductions[p]).all()
        for mode in ("process", "thread")
        for p in serial["sweep"].reductions)
    payload = {
        "points": points,
        "num_servers": num_servers,
        "workers": workers,
        "backend": backend,
        "repeats": repeats,
        "bit_identical": bool(identical),
        "modes": {},
    }
    for mode in ("serial", "process", "thread"):
        payload["modes"][mode] = {
            "wall_s": best[mode]["wall_s"],
            "speedup_vs_serial": serial["wall_s"] / best[mode]["wall_s"],
        }
    # The shared-memory claim: threads vs processes at equal worker
    # count (on a single-core host neither can beat serial, but thread
    # mode skips the fork + pickle + per-process trace rebuild).
    payload["thread_vs_process"] = (best["process"]["wall_s"]
                                    / best["thread"]["wall_s"])
    return payload


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--servers", type=int, default=100)
    parser.add_argument("--hours", type=float, default=48.0,
                        help="trace duration for the tick-rate runs")
    parser.add_argument("--points", type=int, default=12,
                        help="GV sweep size")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N interleaved runs per case")
    parser.add_argument("--backend", choices=("both",) + BACKENDS,
                        default="both",
                        help="tick engines to measure (default: both, "
                             "which also gates on their speedup)")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail (exit 1) when fast/reference falls "
                             "below this ratio")
    parser.add_argument("--paper-servers", type=int, default=1000,
                        help="cluster size for the paper-scale fast run "
                             "(0 skips it)")
    parser.add_argument("--paper-hours", type=float, default=48.0)
    parser.add_argument("--out", default="BENCH_perf.json")
    args = parser.parse_args()

    backends = BACKENDS if args.backend == "both" else (args.backend,)
    print(f"tick rate: {args.servers} servers, {args.hours:g} h trace, "
          f"backends {'/'.join(backends)}, best of {args.repeats} ...")
    tick = measure_tick_rate(args.servers, args.hours, args.seed,
                             backends, args.repeats)
    for backend in backends:
        run = tick["backends"][backend]
        print(f"  {backend:>9}: {run['ticks']} ticks in "
              f"{run['wall_s']:.3f} s = {run['ticks_per_sec']:,.0f} "
              f"ticks/sec (path: {run['kernel_path']})")
    ok = True
    if len(backends) == 2:
        print(f"  speedup {tick['speedup']:.2f}x, bit-identical: "
              f"{tick['bit_identical']}")
        ok = tick["bit_identical"] and tick["speedup"] >= args.min_speedup

    paper = None
    if args.paper_servers > 0:
        print(f"paper scale: {args.paper_servers} servers, "
              f"{args.paper_hours:g} h, fast backend ...")
        paper = measure_paper_scale(args.paper_servers, args.paper_hours,
                                    args.seed, args.repeats)
        print(f"  {paper['ticks']} ticks in {paper['wall_s']:.2f} s "
              f"(target < {paper['target_s']:g} s: "
              f"{paper['under_target']})")

    sweep_backend = "fast" if args.backend == "both" else args.backend
    print(f"sweep: {args.points} GV points, {sweep_backend} backend, "
          f"serial vs {args.workers} process/thread workers ...")
    sweep = measure_sweep(args.servers, args.points, args.workers,
                          args.seed, sweep_backend, args.repeats)
    for mode, timing in sweep["modes"].items():
        print(f"  {mode:>8}: {timing['wall_s']:.2f} s "
              f"({timing['speedup_vs_serial']:.2f}x vs serial)")
    print(f"  bit-identical across modes: {sweep['bit_identical']}")
    ok = ok and sweep["bit_identical"]

    payload = {
        "cpu_count": os.cpu_count(),
        "tick_rate": tick,
        "sweep": sweep,
    }
    if paper is not None:
        payload["paper_scale"] = paper
    merged = {}
    if os.path.exists(args.out):
        with open(args.out) as handle:
            merged = json.load(handle)
    merged.update(payload)
    with open(args.out, "w") as handle:
        json.dump(merged, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

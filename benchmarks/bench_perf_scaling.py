"""Performance scaling benchmark: serial tick rate and parallel speedup.

Unlike the ``bench_fig*`` files (pytest-benchmark reproductions of the
paper's figures), this is a standalone script measuring the simulator
itself:

* **serial tick rate** -- ticks/second of one full simulation run,
  the number the tick hot-path optimizations move;
* **sweep wall-clock** -- a GV sweep run serially and through the
  :class:`~repro.perf.runner.ExperimentRunner` process pool, plus the
  resulting speedup.

Results go to ``BENCH_perf.json``.  Parallel speedup is only meaningful
with real cores: the JSON records ``cpu_count`` so a 1-core container
reporting ~1x is legible as an environment limit, not a regression.

Run::

    PYTHONPATH=src python benchmarks/bench_perf_scaling.py
    PYTHONPATH=src python benchmarks/bench_perf_scaling.py \
        --servers 20 --hours 6 --points 4 --workers 2   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.analysis.sweep import gv_sweep
from repro.config import TraceConfig, paper_cluster_config
from repro.core.policies import make_scheduler
from repro.cluster.simulation import ClusterSimulation
from repro.perf.cache import clear_shared_cache


def measure_tick_rate(num_servers: int, hours: float, seed: int) -> dict:
    """Wall-clock one serial simulation; return ticks/sec and friends."""
    config = paper_cluster_config(num_servers=num_servers, seed=seed)
    config = config.replace(trace=TraceConfig(duration_hours=hours))
    sim = ClusterSimulation(config, make_scheduler("vmt-ta", config),
                            record_heatmaps=False)
    ticks = sim.trace.num_steps
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return {
        "num_servers": num_servers,
        "ticks": ticks,
        "wall_s": elapsed,
        "ticks_per_sec": ticks / elapsed,
    }


def measure_sweep(num_servers: int, points: int, workers: int,
                  seed: int) -> dict:
    """Time the same GV sweep serially and through the process pool."""
    gvs = [14.0 + 2.0 * i for i in range(points)]

    def run(max_workers):
        clear_shared_cache()
        start = time.perf_counter()
        sweep = gv_sweep(gvs, policies=("vmt-ta",), num_servers=num_servers,
                         seed=seed, max_workers=max_workers)
        return time.perf_counter() - start, sweep

    serial_s, serial_sweep = run(1)
    parallel_s, parallel_sweep = run(workers)
    identical = all(
        (serial_sweep.reductions[p] == parallel_sweep.reductions[p]).all()
        for p in serial_sweep.reductions)
    return {
        "points": points,
        "num_servers": num_servers,
        "workers": workers,
        "serial_wall_s": serial_s,
        "parallel_wall_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "bit_identical": bool(identical),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--servers", type=int, default=100)
    parser.add_argument("--hours", type=float, default=48.0,
                        help="trace duration for the tick-rate run")
    parser.add_argument("--points", type=int, default=12,
                        help="GV sweep size")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default="BENCH_perf.json")
    args = parser.parse_args()

    print(f"tick rate: {args.servers} servers, {args.hours:g} h trace ...")
    tick = measure_tick_rate(args.servers, args.hours, args.seed)
    print(f"  {tick['ticks']} ticks in {tick['wall_s']:.2f} s "
          f"= {tick['ticks_per_sec']:,.0f} ticks/sec")

    print(f"sweep: {args.points} GV points, serial vs "
          f"{args.workers} workers ...")
    sweep = measure_sweep(args.servers, args.points, args.workers,
                          args.seed)
    print(f"  serial {sweep['serial_wall_s']:.2f} s, parallel "
          f"{sweep['parallel_wall_s']:.2f} s -> "
          f"{sweep['speedup']:.2f}x speedup "
          f"(bit-identical: {sweep['bit_identical']})")

    payload = {
        "cpu_count": os.cpu_count(),
        "tick_rate": tick,
        "sweep": sweep,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0 if sweep["bit_identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
